//! In-process simulated cluster transport with deterministic fault
//! injection.
//!
//! [`SimNet`] hosts one [`ShardState`] per replica behind the same
//! [`Conn`]/[`Connector`] traits the TCP transport implements, and routes
//! every call through a [`FaultPlan`]. A global step counter advances on
//! each call; the plan's lifecycle events (kill/restart) apply the moment
//! the counter reaches their step, and its wire events corrupt the first
//! call to their target replica at or after theirs. Everything is driven
//! off one mutex-guarded state block, so a single-threaded coordinator
//! replay is exactly reproducible: same plan + same workload → same
//! errors at the same steps → same coordinator event trace.
//!
//! Fault semantics mirror the real failure, not a convenient
//! approximation:
//!
//! * `KillShard` clears the shard's state (process death loses the
//!   table), so recovery must go through the coordinator's reload path;
//! * `DelayReply` lets the shard process the request *before* the reply
//!   is lost, so retries exercise idempotence (a retried push must NACK
//!   with `StaleTable`, not double-append);
//! * `TruncateReply`/`GarbleReply` corrupt real encoded bytes and let the
//!   normal frame parser reject them — the same code path a flaky NIC
//!   would hit. Garbling flips a header byte: the frame codec carries no
//!   payload checksum (TCP's covers transport corruption in production),
//!   so only header damage is detectable, and the plan stays honest about
//!   that.

use crate::fault::{FaultKind, FaultPlan};
use crate::protocol::Frame;
use crate::server::ShardState;
use crate::transport::{Conn, Connector, WireError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct SimShard {
    alive: bool,
    state: ShardState,
    /// Wire version the shard re-pins itself to across kill/restart — a
    /// version pin is operator configuration, not in-memory state, so
    /// process death must not silently un-pin a replica.
    wire_version: u16,
}

struct SimState {
    step: u64,
    /// One flag per plan event: lifecycle events flip to `true` once
    /// applied, wire events once consumed by a call.
    consumed: Vec<bool>,
    shards: Vec<SimShard>,
}

struct SimInner {
    plan: FaultPlan,
    state: Mutex<SimState>,
}

/// A simulated loopback network hosting `replicas` shard servers.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<SimInner>,
}

impl SimNet {
    /// A network of `replicas` empty shard servers governed by `plan`.
    pub fn new(replicas: usize, plan: FaultPlan) -> Self {
        let consumed = vec![false; plan.events().len()];
        let shards = (0..replicas)
            .map(|_| SimShard {
                alive: true,
                state: ShardState::new(),
                wire_version: crate::protocol::PROTOCOL_VERSION,
            })
            .collect();
        SimNet {
            inner: Arc::new(SimInner {
                plan,
                state: Mutex::new(SimState {
                    step: 0,
                    consumed,
                    shards,
                }),
            }),
        }
    }

    /// A connector dialing simulated replica `replica`.
    pub fn connector(&self, replica: usize) -> SimConnector {
        SimConnector {
            net: self.clone(),
            replica,
        }
    }

    /// Current global step (number of calls made so far). A batched query
    /// frame is **one** call and therefore one step — batching shrinks the
    /// step count of a workload, which is exactly the RTT amortization the
    /// v2 steps exist to buy — so fault plans scripted against batched
    /// traffic land on whole batches, never on individual queries inside
    /// one.
    pub fn step(&self) -> u64 {
        self.inner.state.lock().expect("sim state").step
    }

    /// Pins replica `replica` to an older wire version, as an operator
    /// would mid-rolling-upgrade: frames above the pin answer a typed
    /// `VersionSkew` NACK. The pin survives kill/restart (it models
    /// configuration, not process memory) and resets the shard's tables,
    /// so pin before bootstrap — a re-pin mid-run looks like a restart.
    pub fn pin_wire_version(&self, replica: usize, wire_version: u16) {
        let mut st = self.inner.state.lock().expect("sim state");
        let shard = &mut st.shards[replica];
        shard.wire_version = wire_version;
        shard.state = ShardState::with_wire_version(wire_version);
    }

    /// Whether replica `replica` is currently alive (after applying all
    /// lifecycle events due at the current step).
    pub fn alive(&self, replica: usize) -> bool {
        let mut st = self.inner.state.lock().expect("sim state");
        let step = st.step;
        Self::apply_lifecycle(&self.inner.plan, &mut st, step);
        st.shards[replica].alive
    }

    fn apply_lifecycle(plan: &FaultPlan, st: &mut SimState, through: u64) {
        for (i, e) in plan.events().iter().enumerate() {
            if st.consumed[i] || !e.kind.is_lifecycle() || e.step > through {
                continue;
            }
            st.consumed[i] = true;
            let shard = &mut st.shards[e.replica];
            match e.kind {
                FaultKind::KillShard => {
                    shard.alive = false;
                    // Process death loses the table, not the version pin.
                    shard.state = ShardState::with_wire_version(shard.wire_version);
                }
                FaultKind::RestartShard => {
                    shard.alive = true;
                    shard.state = ShardState::with_wire_version(shard.wire_version);
                }
                _ => unreachable!("lifecycle filter"),
            }
        }
    }

    /// Takes the first unconsumed wire fault armed for `replica` at or
    /// before `step`.
    fn take_wire_fault(&self, st: &mut SimState, replica: usize, step: u64) -> Option<FaultKind> {
        for (i, e) in self.inner.plan.events().iter().enumerate() {
            if st.consumed[i] || e.kind.is_lifecycle() || e.replica != replica || e.step > step {
                continue;
            }
            st.consumed[i] = true;
            return Some(e.kind);
        }
        None
    }

    fn call(&self, replica: usize, frame: &Frame) -> Result<Frame, WireError> {
        let mut st = self.inner.state.lock().expect("sim state");
        st.step += 1;
        let step = st.step;
        Self::apply_lifecycle(&self.inner.plan, &mut st, step);
        if !st.shards[replica].alive {
            return Err(WireError::Closed(format!("sim shard {replica} is down")));
        }
        match self.take_wire_fault(&mut st, replica, step) {
            Some(FaultKind::DropConn) => {
                // Request never reaches the shard.
                Err(WireError::Closed(format!(
                    "sim: connection to shard {replica} dropped"
                )))
            }
            Some(FaultKind::DelayReply) => {
                // The shard processes the request; only the reply is lost.
                let _ = st.shards[replica].state.handle(frame);
                Err(WireError::Timeout)
            }
            Some(FaultKind::TruncateReply) => {
                let reply = st.shards[replica].state.handle(frame);
                let bytes = reply.to_bytes();
                let cut = bytes.len() / 2;
                Err(Frame::from_bytes(&bytes[..cut])
                    .expect_err("truncated frame must not parse")
                    .into())
            }
            Some(FaultKind::GarbleReply) => {
                let reply = st.shards[replica].state.handle(frame);
                let mut bytes = reply.to_bytes();
                bytes[0] ^= 0x5a; // damage the magic — detectably corrupt
                Err(Frame::from_bytes(&bytes)
                    .expect_err("garbled magic must not parse")
                    .into())
            }
            Some(other) => unreachable!("lifecycle fault {other:?} as wire fault"),
            None => Ok(st.shards[replica].state.handle(frame)),
        }
    }
}

/// Connector for one simulated replica.
pub struct SimConnector {
    net: SimNet,
    replica: usize,
}

impl Connector for SimConnector {
    fn connect(&mut self) -> Result<Box<dyn Conn>, WireError> {
        let mut st = self.net.inner.state.lock().expect("sim state");
        // A dial is a scheduled interaction like any call: it advances
        // the global step, so lifecycle events can fire between dials
        // even when no call ever succeeds (a dead single-replica net
        // would otherwise freeze time and its restart could never land).
        st.step += 1;
        let step = st.step;
        SimNet::apply_lifecycle(&self.net.inner.plan, &mut st, step);
        if !st.shards[self.replica].alive {
            return Err(WireError::Closed(format!(
                "sim: connection to shard {} refused",
                self.replica
            )));
        }
        drop(st);
        Ok(Box::new(SimConn {
            net: self.net.clone(),
            replica: self.replica,
            dead: false,
            pending: None,
        }))
    }

    fn label(&self) -> String {
        format!("sim://{}", self.replica)
    }
}

/// One simulated connection. Any error poisons it, matching the TCP
/// transport's re-dial discipline.
///
/// The two-phase surface maps onto the synchronous simulation by
/// executing the request at `send` time — the global step advances in
/// **send order**, so a pipelined fan-out (all sends in fixed range
/// order, then all recvs) schedules fault events exactly as a serial
/// replay of the same send sequence would — and parking the result until
/// `recv`. Pipelining therefore changes no step numbering and no trace.
pub struct SimConn {
    net: SimNet,
    replica: usize,
    dead: bool,
    /// Result parked between `send` and `recv`.
    pending: Option<Result<Frame, WireError>>,
}

impl Conn for SimConn {
    fn send(&mut self, frame: &Frame, _deadline: Duration) -> Result<(), WireError> {
        if self.dead {
            return Err(WireError::Closed("sim: connection already failed".into()));
        }
        if self.pending.is_some() {
            self.dead = true;
            return Err(WireError::Frame(
                "sim: send with a reply still in flight".into(),
            ));
        }
        // Note: a send whose *reply* will fail still succeeds here — the
        // wire accepted the bytes; the failure surfaces at `recv`, as on
        // a real socket.
        self.pending = Some(self.net.call(self.replica, frame));
        Ok(())
    }

    fn recv(&mut self, _deadline: Duration) -> Result<Frame, WireError> {
        if self.dead {
            return Err(WireError::Closed("sim: connection already failed".into()));
        }
        let out = match self.pending.take() {
            Some(r) => r,
            None => Err(WireError::Frame("sim: recv without a send".into())),
        };
        if out.is_err() {
            self.dead = true;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;
    use crate::protocol::{EpochTable, Load, Message, Ping, Pong};

    fn ping(conn: &mut Box<dyn Conn>, nonce: u64) -> Result<Frame, WireError> {
        conn.call(&Ping { nonce }.into_frame(), Duration::from_secs(1))
    }

    #[test]
    fn healthy_net_answers() {
        let net = SimNet::new(2, FaultPlan::none());
        let mut c = net.connector(1).connect().expect("connect");
        let pong = Pong::from_frame(&ping(&mut c, 7).expect("reply")).expect("pong");
        assert_eq!(pong.nonce, 7);
        assert_eq!(net.step(), 2, "one dial + one call");
    }

    #[test]
    fn kill_loses_state_and_restart_comes_back_empty() {
        let plan = FaultPlan::none().with_kill(3, 0).with_restart(4, 0);
        let net = SimNet::new(1, plan);
        let mut c = net.connector(0).connect().expect("connect"); // step 1
        let table = EpochTable {
            epoch: 0,
            ids: vec![0],
            embeddings: vec![vec![1.0]],
        };
        c.call(&Load(table).into_frame(), Duration::from_secs(1))
            .expect("load"); // step 2
                             // Step 3: the kill applies before the call — connection dies.
        assert!(matches!(ping(&mut c, 1), Err(WireError::Closed(_))));
        assert!(!net.alive(0));
        // Step 4 (the re-dial): restart applies — alive again, but the
        // table is gone.
        let mut c = net.connector(0).connect().expect("reconnect");
        let pong = Pong::from_frame(&ping(&mut c, 2).expect("reply")).expect("pong");
        assert_eq!(pong.epoch, u64::MAX, "restarted shard is empty");
    }

    #[test]
    fn wire_faults_fire_once_and_poison_the_conn() {
        let plan = FaultPlan::scripted(vec![FaultEvent {
            step: 1,
            replica: 0,
            kind: FaultKind::TruncateReply,
        }]);
        let net = SimNet::new(1, plan);
        let mut c = net.connector(0).connect().expect("connect");
        assert!(matches!(ping(&mut c, 1), Err(WireError::Frame(_))));
        // The conn is poisoned even for later calls.
        assert!(matches!(ping(&mut c, 2), Err(WireError::Closed(_))));
        // A fresh conn works: the fault was one-shot.
        let mut c = net.connector(0).connect().expect("reconnect");
        assert!(ping(&mut c, 3).is_ok());
    }

    #[test]
    fn delayed_reply_still_mutates_state() {
        let plan = FaultPlan::scripted(vec![FaultEvent {
            step: 1,
            replica: 0,
            kind: FaultKind::DelayReply,
        }]);
        let net = SimNet::new(1, plan);
        let mut c = net.connector(0).connect().expect("connect");
        let table = EpochTable {
            epoch: 4,
            ids: vec![9],
            embeddings: vec![vec![0.5]],
        };
        assert!(matches!(
            c.call(&Load(table).into_frame(), Duration::from_secs(1)),
            Err(WireError::Timeout)
        ));
        let mut c = net.connector(0).connect().expect("reconnect");
        let pong = Pong::from_frame(&ping(&mut c, 1).expect("reply")).expect("pong");
        assert_eq!(
            (pong.epoch, pong.version),
            (4, 1),
            "the load applied even though its ack was lost"
        );
    }
}
