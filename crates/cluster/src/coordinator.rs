//! The cluster coordinator: the authority copy of the sharded advisor
//! plus the replicated wire fan-out.
//!
//! # Authority-first discipline
//!
//! The coordinator owns a full [`ShardedAdvisor`] (the *authority*):
//! every mutation — push, embedding refresh, epoch advance — applies to
//! the authority first, and remote shard tables are pure derived state
//! (`(ids, embeddings)` projections of one authority range). Any replica
//! inconsistency, however it arose (missed push, restart, torn frame), is
//! repaired the same way: reload the authority's current table. That one
//! rule makes failure handling boring, which is the point.
//!
//! # Pipelined range fan-out
//!
//! A prediction needs one partial top-k answer per shard range. Paying
//! the round trips serially sums them; the coordinator instead issues the
//! query to every range's first candidate replica (all sends, fixed range
//! order), then collects the answers in the same fixed order (all recvs),
//! so the per-range round trips overlap on the wire. Any optimistic
//! failure — transport error or NACK — is handled exactly as the serial
//! path would handle it, and that range falls back to the full bounded
//! retry/failover loop; *which* path produced the answer cannot change a
//! bit of it.
//!
//! # Replica demotion
//!
//! A replica whose dead-streak reaches [`ClusterConfig::demote_after`] is
//! **demoted**: the query/push/snapshot paths stop selecting it, so a
//! degraded cluster stops paying a refused dial on every request. Only
//! [`ClusterCoordinator::heartbeat`] and [`ClusterCoordinator::bootstrap`]
//! still touch demoted replicas, and any successful round trip
//! re-promotes (heartbeat's stale-table check then reloads a replica that
//! restarted empty). Last-hope exception: if *every* replica of a range
//! is demoted, the query path considers all of them rather than failing
//! without trying. Both transitions are traced (`demote …` /
//! `repromote …`).
//!
//! # Determinism and the event trace
//!
//! Each range lane buffers its events in a private sub-trace;
//! public operations drain the lanes into the global trace in fixed range
//! order when they finish. The merged trace is therefore a deterministic
//! function of (workload, fault plan, seed) — byte-for-byte reproducible
//! across runs and unchanged by how the pipelined phases interleave on
//! the wire.
//!
//! # Bit-identity under failure
//!
//! Partial top-k answers come off the wire, but every float they carry
//! was computed by the same `euclidean` over embedding bits that traveled
//! bit-exactly, in the same slot order, under the same
//! [`knn_order`]-based select/truncate/sort as the in-process
//! [`ShardedAdvisor`]. The merge and [`knn_vote`] run coordinator-side on
//! authority metadata. Replicas of a range hold identical tables (they
//! NACK rather than serve stale ones), so *which* replica answers — first
//! choice, retry, failover, or a freshly re-promoted one — cannot change
//! a single bit of the recommendation. Only when every replica of some
//! range is unreachable does the coordinator fail, explicitly, with
//! [`ClusterError::RangeUnavailable`].
//!
//! # Concurrency
//!
//! All public methods take `&self`: the coordinator serializes itself
//! behind one internal mutex, so it can sit behind `ce-serve`'s
//! micro-batcher as an [`AdvisorBackend`] (shared via `Arc`) like any
//! other backend. Operations still execute one at a time — that is what
//! keeps retries, failover and the event trace strictly ordered, and
//! therefore reproducible; the concurrency story (batching many client
//! threads into few coordinator calls) lives a layer up.

use crate::health::{ClusterHealth, ReplicaHealth};
use crate::protocol::{
    BatchQuery, EpochAck, EpochTable, Frame, Load, LoadAck, Message, MetricsReply, MetricsRequest,
    Nack, NackCode, Ping, Pong, Push, PushAck, Query, QueryBatch, SnapshotEpoch, Step, TopK,
    TopKBatch, HEADER_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::transport::{Conn, Connector, WireError};
use autoce::{
    knn_order, knn_vote, validate_nonzero, AdvisorBackend, AdvisorError, BatchPredictRequest,
};
use ce_features::{FeatureConfig, FeatureGraph};
use ce_models::ModelKind;
use ce_obs::{Counter, Histogram, MetricsRegistry, MetricsSnapshot, Span, LATENCY_NS_BUCKETS};
use ce_serve::ShardedAdvisor;
use ce_testbed::{DatasetLabel, MetricWeights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Robustness knobs for the wire fan-out. Prefer [`ClusterConfig::builder`],
/// which rejects nonsensical combinations at build time; the struct-literal
/// form keeps working but performs no validation.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-request round-trip deadline.
    pub request_deadline: Duration,
    /// Attempts per replica before failing over to the next one.
    pub max_attempts_per_replica: u32,
    /// Base of the exponential backoff between retries.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Consecutive failures after which a replica is demoted out of
    /// regular traffic (see the module docs). Re-promotion happens on any
    /// successful round trip — in practice via [`ClusterCoordinator::heartbeat`].
    pub demote_after: u32,
    /// Seed for backoff jitter (jitter is deterministic given the seed
    /// and the failure sequence — it never appears in the event trace).
    pub seed: u64,
    /// Highest protocol version the coordinator emits. Defaults to
    /// [`PROTOCOL_VERSION`]; pinning it to 1 (the mixed-version rolling
    /// upgrade, coordinator side) makes [`ClusterCoordinator::predict_batch`]
    /// serve every batch through the serial per-query path — never a
    /// batch frame, so never a skew NACK.
    pub wire_version: u16,
    /// Metrics registry the coordinator records into (default: disabled —
    /// every handle is a no-op). Recording is a strictly read-only side
    /// channel: it never takes a lock beyond the coordinator mutex the
    /// caller already holds, never routes through the transport, and
    /// never appends an event-trace line, so fault-plan step arithmetic
    /// and trace bytes are identical with metrics on or off. Under
    /// `SimNet`, pass [`MetricsRegistry::new_logical`] so RTT spans count
    /// logical ticks instead of wall time and exposition replays
    /// byte-equal.
    pub metrics: MetricsRegistry,
    /// Two-stage KNN index configuration for the coordinator's
    /// **authority** advisor (installed at construction). Shard servers
    /// carry their own operator-side knob ([`crate::server::ShardState::set_index_config`]);
    /// nothing index-related crosses the wire, and indexed and flat
    /// answers are bit-identical, so the two knobs need not agree.
    pub index: Option<autoce::index::IndexConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            request_deadline: Duration::from_secs(2),
            max_attempts_per_replica: 3,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(100),
            demote_after: 3,
            seed: 0xc105,
            wire_version: PROTOCOL_VERSION,
            metrics: MetricsRegistry::disabled(),
            index: None,
        }
    }
}

impl ClusterConfig {
    /// A config with zero backoff sleeps — what the deterministic
    /// gauntlet uses so fault sweeps run at memory speed.
    pub fn no_sleep() -> Self {
        ClusterConfig {
            backoff_base: Duration::ZERO,
            backoff_max: Duration::ZERO,
            ..ClusterConfig::default()
        }
    }

    /// Validated construction: rejects impossible knob combinations when
    /// the config is built instead of when the first request fails.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            cfg: ClusterConfig::default(),
        }
    }
}

/// Builder for [`ClusterConfig`]; see [`ClusterConfig::builder`].
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Sets the per-request round-trip deadline.
    pub fn request_deadline(mut self, d: Duration) -> Self {
        self.cfg.request_deadline = d;
        self
    }

    /// Sets the attempts per replica before failover.
    pub fn max_attempts_per_replica(mut self, n: u32) -> Self {
        self.cfg.max_attempts_per_replica = n;
        self
    }

    /// Sets the backoff base.
    pub fn backoff_base(mut self, d: Duration) -> Self {
        self.cfg.backoff_base = d;
        self
    }

    /// Sets the backoff ceiling.
    pub fn backoff_max(mut self, d: Duration) -> Self {
        self.cfg.backoff_max = d;
        self
    }

    /// Sets the demotion dead-streak threshold.
    pub fn demote_after(mut self, n: u32) -> Self {
        self.cfg.demote_after = n;
        self
    }

    /// Sets the jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Pins the highest protocol version the coordinator emits (rolling
    /// upgrades: a v1 pin suppresses batch frames entirely).
    pub fn wire_version(mut self, v: u16) -> Self {
        self.cfg.wire_version = v;
        self
    }

    /// Sets the metrics registry (see [`ClusterConfig::metrics`]).
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.cfg.metrics = registry;
        self
    }

    /// Sets the authority-side KNN index configuration (see
    /// [`ClusterConfig::index`]). Structural validation runs at
    /// [`Self::build`]; the `k`-dependent cutover check runs at
    /// coordinator construction, when the authority's `k` is known.
    pub fn index(mut self, cfg: autoce::index::IndexConfig) -> Self {
        self.cfg.index = Some(cfg);
        self
    }

    /// Zeroes the backoff sleeps (deterministic-gauntlet mode).
    pub fn no_sleep(mut self) -> Self {
        self.cfg.backoff_base = Duration::ZERO;
        self.cfg.backoff_max = Duration::ZERO;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<ClusterConfig, AdvisorError> {
        validate_nonzero(
            "max_attempts_per_replica",
            self.cfg.max_attempts_per_replica as usize,
        )?;
        validate_nonzero("demote_after", self.cfg.demote_after as usize)?;
        if self.cfg.request_deadline.is_zero() && self.cfg.max_attempts_per_replica > 1 {
            return Err(AdvisorError::InvalidConfig(
                "request_deadline must be non-zero when retries are configured \
                 (every retry would time out instantly)"
                    .into(),
            ));
        }
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&self.cfg.wire_version) {
            return Err(AdvisorError::InvalidConfig(format!(
                "wire_version {} is outside the supported range {}..={}",
                self.cfg.wire_version, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION
            )));
        }
        if let Some(index) = &self.cfg.index {
            index.validate()?;
        }
        Ok(self.cfg)
    }
}

/// A terminal cluster failure (retries and failover already exhausted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Every replica of `range` is unreachable or unusable.
    RangeUnavailable {
        /// The dark range.
        range: usize,
    },
    /// A peer answered something protocol-violating that retries cannot
    /// fix.
    Protocol(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::RangeUnavailable { range } => {
                write!(f, "no live replica for shard range {range}")
            }
            ClusterError::Protocol(d) => write!(f, "protocol violation: {d}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ClusterError> for AdvisorError {
    fn from(e: ClusterError) -> Self {
        match e {
            ClusterError::RangeUnavailable { range } => AdvisorError::RangeUnavailable { range },
            ClusterError::Protocol(d) => AdvisorError::Protocol(d),
        }
    }
}

struct Replica {
    connector: Box<dyn Connector>,
    conn: Option<Box<dyn Conn>>,
    health: ReplicaHealth,
}

/// One lane's metrics handles, registered once at construction (the cold
/// path) so every recording site is a plain `fetch_add` under the
/// coordinator mutex the caller already holds — never a registry lock,
/// never a transport call, never a trace line.
struct LaneObs {
    /// `ce_cluster_rtt_ns{range}`: completed round-trip attempts (success
    /// or wire failure), serial and pipelined paths alike.
    rtt_ns: Histogram,
    /// `ce_cluster_retries_total{range}`: second-and-later attempts on the
    /// same replica.
    retries: Counter,
    /// `ce_cluster_backoffs_total{range}`: actual backoff sleeps (zero
    /// under `no_sleep` configs — the counter reports real waiting, not
    /// retry pressure; see `retries` for that).
    backoffs: Counter,
    /// `ce_cluster_failovers_total{range}`.
    failovers: Counter,
    /// `ce_cluster_reloads_total{range}`.
    reloads: Counter,
    /// `ce_cluster_demotes_total{range}` / `ce_cluster_repromotes_total{range}`.
    demotes: Counter,
    repromotes: Counter,
    /// `ce_cluster_batch_downgrades_total{range}`.
    batch_downgrades: Counter,
    /// `ce_cluster_replica_failures_total{range}`: every failed
    /// dial/send/recv, pre-demotion.
    replica_failures: Counter,
    /// `ce_cluster_nacks_total{range,code}`, indexed by `NackCode as u16 - 1`.
    nacks: [Counter; 4],
    /// `ce_cluster_wire_bytes_out_total{step}` / `_in_total{step}`,
    /// indexed by step number. The cells are shared across lanes (same
    /// key → same cell), so these count cluster-wide wire traffic.
    bytes_out: Vec<Counter>,
    bytes_in: Vec<Counter>,
}

impl LaneObs {
    fn new(reg: &MetricsRegistry, range: usize) -> Self {
        let rs = range.to_string();
        let labels = [("range", rs.as_str())];
        let c = |name: &str| reg.counter(name, &labels);
        let nack =
            |code: &str| reg.counter("ce_cluster_nacks_total", &[("range", &rs), ("code", code)]);
        let per_step = |name: &str| -> Vec<Counter> {
            Step::all()
                .map(|s| reg.counter(name, &[("step", s.name())]))
                .collect()
        };
        LaneObs {
            rtt_ns: reg.histogram("ce_cluster_rtt_ns", &labels, LATENCY_NS_BUCKETS),
            retries: c("ce_cluster_retries_total"),
            backoffs: c("ce_cluster_backoffs_total"),
            failovers: c("ce_cluster_failovers_total"),
            reloads: c("ce_cluster_reloads_total"),
            demotes: c("ce_cluster_demotes_total"),
            repromotes: c("ce_cluster_repromotes_total"),
            batch_downgrades: c("ce_cluster_batch_downgrades_total"),
            replica_failures: c("ce_cluster_replica_failures_total"),
            nacks: [
                nack("stale_table"),
                nack("malformed"),
                nack("no_table"),
                nack("version_skew"),
            ],
            bytes_out: per_step("ce_cluster_wire_bytes_out_total"),
            bytes_in: per_step("ce_cluster_wire_bytes_in_total"),
        }
    }

    fn nack(&self, code: NackCode) {
        self.nacks[code as u16 as usize - 1].inc();
    }
}

/// One shard range's replica set plus everything range-scoped: health,
/// demotion state, a private sub-trace, the lane's backoff jitter stream,
/// and the cached repair (`Load`) frame.
struct RangeLane {
    /// Fixed preference order within the range.
    replicas: Vec<Replica>,
    /// Per-lane jitter stream (seeded from the config seed and the range
    /// index, so lanes stay independent of each other's failure counts).
    rng: StdRng,
    /// Buffered events; drained into the global trace in fixed range
    /// order at the end of each public operation.
    sub: Vec<String>,
    /// Cached repair frame keyed by `(epoch, version)` — rebuilding the
    /// full table frame on every reload would re-encode the whole range.
    /// The key is self-validating: any authority mutation changes the
    /// version (push) or the epoch (snapshot).
    load_frame: Option<(u64, u64, Frame)>,
    /// Sticky mixed-version downgrade: set when a replica of this range
    /// answered a batch frame with a `VersionSkew` NACK. A downgraded
    /// lane serves batches through the per-query v1 path (bit-identical
    /// by construction) instead of re-discovering the pin every batch.
    batch_downgraded: bool,
    /// Metrics handles (no-ops when the registry is disabled).
    obs: LaneObs,
    /// RTT span of the in-flight request, opened by [`Self::raw_send`]
    /// and closed (recorded) by [`Self::raw_recv`]. At most one request
    /// is ever in flight per lane.
    rtt_span: Option<Span>,
}

/// Outcome of a batched range call: a non-NACK reply frame, or an
/// instruction to downgrade this lane to the per-query path because a
/// version-pinned replica refused the batch step.
enum BatchOutcome {
    Reply(Frame),
    Downgrade,
}

impl RangeLane {
    /// Records a failed dial/send/recv and applies the demotion
    /// transition when the dead-streak reaches the threshold.
    fn record_failure(&mut self, range: usize, cfg: &ClusterConfig, r: usize) {
        self.obs.replica_failures.inc();
        let h = &mut self.replicas[r].health;
        h.record_failure();
        if !h.demoted && h.consecutive_failures >= u64::from(cfg.demote_after) {
            h.demoted = true;
            let streak = h.consecutive_failures;
            self.obs.demotes.inc();
            self.sub
                .push(format!("demote range={range} r={r} streak={streak}"));
        }
    }

    /// Records a successful round trip; a demoted replica that answers is
    /// re-promoted on the spot.
    fn record_success(&mut self, range: usize, r: usize) {
        let h = &mut self.replicas[r].health;
        h.record_success();
        if h.demoted {
            h.demoted = false;
            self.obs.repromotes.inc();
            self.sub.push(format!("repromote range={range} r={r}"));
        }
    }

    /// Issues `frame` to replica `r`, dialing first if needed. Failures
    /// poison the connection and are recorded; the reply (or the wire
    /// failure) is collected by [`Self::raw_recv`].
    fn raw_send(
        &mut self,
        range: usize,
        cfg: &ClusterConfig,
        r: usize,
        frame: &Frame,
    ) -> Result<(), WireError> {
        if self.replicas[r].conn.is_none() {
            match self.replicas[r].connector.connect() {
                Ok(conn) => self.replicas[r].conn = Some(conn),
                Err(e) => {
                    self.sub.push(format!("dial-err range={range} r={r}: {e}"));
                    self.record_failure(range, cfg, r);
                    return Err(e);
                }
            }
        }
        let res = self.replicas[r]
            .conn
            .as_mut()
            .expect("dialed above")
            .send(frame, cfg.request_deadline);
        match &res {
            Ok(()) => {
                self.obs.bytes_out[frame.step as u16 as usize]
                    .add((HEADER_LEN + frame.payload.len()) as u64);
                self.rtt_span = Some(self.obs.rtt_ns.start_span());
            }
            Err(e) => {
                self.replicas[r].conn = None;
                self.sub.push(format!("send-err range={range} r={r}: {e}"));
                self.record_failure(range, cfg, r);
            }
        }
        res
    }

    /// Collects the answer to the last [`Self::raw_send`] on replica `r`.
    fn raw_recv(
        &mut self,
        range: usize,
        cfg: &ClusterConfig,
        r: usize,
    ) -> Result<Frame, WireError> {
        let Some(conn) = self.replicas[r].conn.as_mut() else {
            return Err(WireError::Closed("recv without a live connection".into()));
        };
        let res = conn.recv(cfg.request_deadline);
        // Dropping the span records the attempt's round trip — completed
        // and failed attempts alike, so the histogram reflects what the
        // wire actually cost, not only the happy path.
        drop(self.rtt_span.take());
        match res {
            Ok(reply) => {
                self.obs.bytes_in[reply.step as u16 as usize]
                    .add((HEADER_LEN + reply.payload.len()) as u64);
                self.record_success(range, r);
                Ok(reply)
            }
            Err(e) => {
                self.replicas[r].conn = None;
                self.sub.push(format!("call-err range={range} r={r}: {e}"));
                self.record_failure(range, cfg, r);
                Err(e)
            }
        }
    }

    /// One full round trip to replica `r` (serial paths).
    fn raw_call(
        &mut self,
        range: usize,
        cfg: &ClusterConfig,
        r: usize,
        frame: &Frame,
    ) -> Result<Frame, WireError> {
        self.raw_send(range, cfg, r, frame)?;
        self.raw_recv(range, cfg, r)
    }

    /// Preference-ordered candidate replicas: demoted ones are skipped so
    /// a degraded cluster stops paying a refused dial per request —
    /// unless *all* replicas are demoted, in which case every one is a
    /// candidate (last hope beats certain failure).
    fn candidates(&self) -> Vec<usize> {
        let live: Vec<usize> = (0..self.replicas.len())
            .filter(|&r| !self.replicas[r].health.demoted)
            .collect();
        if live.is_empty() {
            (0..self.replicas.len()).collect()
        } else {
            live
        }
    }

    fn backoff(&mut self, cfg: &ClusterConfig, attempt: u32) {
        let base = cfg.backoff_base;
        if base.is_zero() {
            return;
        }
        self.obs.backoffs.inc();
        let exp = base.saturating_mul(1u32 << attempt.min(10));
        let capped = exp.min(cfg.backoff_max);
        // Up to +50% seeded jitter, deterministic per lane.
        let jitter = self.rng.gen_range(0..256u64) as f64 / 512.0;
        std::thread::sleep(capped.mul_f64(1.0 + jitter));
    }

    /// Reloads replica `r` from the lane's cached `Load` frame (primed by
    /// the coordinator against the authority before any operation that
    /// may need repair). This is both bootstrap and *the* repair action.
    fn load_replica(
        &mut self,
        range: usize,
        cfg: &ClusterConfig,
        r: usize,
    ) -> Result<(), WireError> {
        let (epoch, version, frame) = self
            .load_frame
            .clone()
            .expect("load frame primed before any repair path");
        let reply = self.raw_call(range, cfg, r, &frame)?;
        let ack = LoadAck::from_frame(&reply).map_err(|e| WireError::Frame(e.to_string()))?;
        if (ack.epoch, ack.version) != (epoch, version) {
            return Err(WireError::Frame(format!(
                "load ack mismatch: want ({epoch},{version}), got ({},{})",
                ack.epoch, ack.version
            )));
        }
        self.replicas[r].health.record_reload();
        self.obs.reloads.inc();
        self.sub.push(format!(
            "reload range={range} r={r} epoch={epoch} v={version}"
        ));
        Ok(())
    }

    /// Reacts to a NACK answer from replica `r`: trace it, then apply the
    /// one repair action its code calls for (reload for table mismatches,
    /// re-dial for a damaged request).
    fn on_nack(&mut self, range: usize, cfg: &ClusterConfig, r: usize, reply: &Frame) {
        match Nack::from_frame(reply) {
            Ok(nack) => {
                self.obs.nack(nack.code);
                self.sub.push(format!(
                    "nack range={range} r={r} {:?}: {}",
                    nack.code, nack.detail
                ));
                match nack.code {
                    NackCode::StaleTable | NackCode::NoTable => {
                        let _ = self.load_replica(range, cfg, r);
                    }
                    NackCode::Malformed => {
                        // Our request arrived damaged — drop the conn and
                        // resend over a fresh one.
                        self.replicas[r].conn = None;
                    }
                    NackCode::VersionSkew => {
                        // Version-gated refusal: no repair applies, and a
                        // retry of the same frame would skew again. The
                        // batched path intercepts this code *before*
                        // `on_nack` and downgrades the lane instead.
                    }
                }
            }
            Err(e) => {
                self.sub.push(format!("bad-nack range={range} r={r}: {e}"));
                self.replicas[r].conn = None;
            }
        }
    }

    /// Serial fan-out to this lane: bounded retries with backoff per
    /// candidate replica (demotion-aware), NACK-triggered repair, then
    /// failover to the next candidate. Returns the first non-NACK answer.
    fn call_range(
        &mut self,
        range: usize,
        cfg: &ClusterConfig,
        frame: &Frame,
    ) -> Result<Frame, ClusterError> {
        for (i, r) in self.candidates().into_iter().enumerate() {
            if i > 0 {
                self.obs.failovers.inc();
                self.sub.push(format!("failover range={range} to r={r}"));
            }
            for attempt in 0..cfg.max_attempts_per_replica {
                if attempt > 0 {
                    self.obs.retries.inc();
                }
                let reply = match self.raw_call(range, cfg, r, frame) {
                    Ok(reply) => reply,
                    Err(_) => {
                        // raw_call already traced and recorded the failure.
                        self.backoff(cfg, attempt);
                        continue;
                    }
                };
                if reply.step != Step::ShardSendNack {
                    return Ok(reply);
                }
                self.on_nack(range, cfg, r, &reply);
                self.backoff(cfg, attempt);
            }
        }
        self.sub.push(format!("range-dark range={range}"));
        Err(ClusterError::RangeUnavailable { range })
    }

    /// [`Self::call_range`] for a batch frame: the identical bounded
    /// retry/failover discipline, except a `VersionSkew` NACK returns
    /// [`BatchOutcome::Downgrade`] immediately — a version-pinned peer
    /// refuses every retry of the same step, so retrying to range-dark
    /// would turn an operator's pin into an outage.
    fn call_range_batch(
        &mut self,
        range: usize,
        cfg: &ClusterConfig,
        frame: &Frame,
    ) -> Result<BatchOutcome, ClusterError> {
        for (i, r) in self.candidates().into_iter().enumerate() {
            if i > 0 {
                self.obs.failovers.inc();
                self.sub.push(format!("failover range={range} to r={r}"));
            }
            for attempt in 0..cfg.max_attempts_per_replica {
                if attempt > 0 {
                    self.obs.retries.inc();
                }
                let reply = match self.raw_call(range, cfg, r, frame) {
                    Ok(reply) => reply,
                    Err(_) => {
                        // raw_call already traced and recorded the failure.
                        self.backoff(cfg, attempt);
                        continue;
                    }
                };
                if reply.step != Step::ShardSendNack {
                    return Ok(BatchOutcome::Reply(reply));
                }
                if self.nack_is_version_skew(range, r, &reply) {
                    return Ok(BatchOutcome::Downgrade);
                }
                self.on_nack(range, cfg, r, &reply);
                self.backoff(cfg, attempt);
            }
        }
        self.sub.push(format!("range-dark range={range}"));
        Err(ClusterError::RangeUnavailable { range })
    }

    /// Checks a NACK reply for the version-skew code, tracing it when it
    /// matches (the caller then downgrades the lane instead of repairing).
    fn nack_is_version_skew(&mut self, range: usize, r: usize, reply: &Frame) -> bool {
        match Nack::from_frame(reply) {
            Ok(nack) if nack.code == NackCode::VersionSkew => {
                self.obs.nack(nack.code);
                self.sub.push(format!(
                    "nack range={range} r={r} {:?}: {}",
                    nack.code, nack.detail
                ));
                true
            }
            _ => false,
        }
    }

    /// Best-effort metrics fetch from replica `r` over
    /// [`Step::CoordSendMetrics`]. Deliberately outside the normal call
    /// discipline: no retries, no health transitions, no trace lines and
    /// no wire-byte accounting — observing the cluster must not change
    /// how the cluster is observed to behave. Any failure (down replica,
    /// version-skew NACK from a v1-pinned shard, corrupt snapshot) just
    /// yields `None`.
    fn fetch_metrics(&mut self, cfg: &ClusterConfig, r: usize) -> Option<MetricsSnapshot> {
        if self.replicas[r].conn.is_none() {
            self.replicas[r].conn = self.replicas[r].connector.connect().ok();
        }
        let conn = self.replicas[r].conn.as_mut()?;
        let frame = MetricsRequest.into_frame();
        if conn.send(&frame, cfg.request_deadline).is_err() {
            self.replicas[r].conn = None;
            return None;
        }
        let reply = match conn.recv(cfg.request_deadline) {
            Ok(f) => f,
            Err(_) => {
                self.replicas[r].conn = None;
                return None;
            }
        };
        let reply = MetricsReply::from_frame(&reply).ok()?;
        MetricsSnapshot::from_bytes(&reply.snapshot).ok()
    }
}

/// Everything behind the coordinator's mutex; see [`ClusterCoordinator`].
struct CoordInner {
    authority: ShardedAdvisor,
    cfg: ClusterConfig,
    /// Current serving epoch (the generation tag extended to the wire).
    epoch: u64,
    /// `lanes[range]`, fixed range order.
    lanes: Vec<RangeLane>,
    ping_nonce: u64,
    trace: Vec<String>,
}

impl CoordInner {
    fn make_table(&self, range: usize) -> EpochTable {
        let shard = &self.authority.shards()[range];
        EpochTable {
            epoch: self.epoch,
            ids: shard.ids().iter().map(|&id| id as u64).collect(),
            embeddings: shard
                .entries()
                .iter()
                .map(|e| e.embedding.clone())
                .collect(),
        }
    }

    /// Re-derives lane `range`'s cached `Load` frame when its
    /// `(epoch, version)` key no longer matches the authority.
    fn prime_load_frame(&mut self, range: usize) {
        let version = self.authority.shards()[range].len() as u64;
        if matches!(&self.lanes[range].load_frame,
                    Some((e, v, _)) if (*e, *v) == (self.epoch, version))
        {
            return;
        }
        let table = self.make_table(range);
        debug_assert_eq!(table.version(), version);
        self.lanes[range].load_frame = Some((self.epoch, version, Load(table).into_frame()));
    }

    /// Drains every lane's sub-trace into the global trace, fixed range
    /// order — the deterministic merge point described in the module docs.
    fn merge_trace(&mut self) {
        let trace = &mut self.trace;
        for lane in &mut self.lanes {
            trace.append(&mut lane.sub);
        }
    }

    fn health(&self) -> ClusterHealth {
        ClusterHealth {
            ranges: self
                .lanes
                .iter()
                .map(|lane| lane.replicas.iter().map(|r| r.health.clone()).collect())
                .collect(),
        }
    }

    fn bootstrap(&mut self) -> Result<(), ClusterError> {
        for range in 0..self.lanes.len() {
            self.prime_load_frame(range);
            let lane = &mut self.lanes[range];
            let mut live = 0usize;
            // All replicas, demoted included: bootstrap doubles as a
            // whole-cluster resync and re-promotion pass.
            for r in 0..lane.replicas.len() {
                if lane.load_replica(range, &self.cfg, r).is_ok() {
                    live += 1;
                }
            }
            if live == 0 {
                lane.sub.push(format!("range-dark range={range}"));
                return Err(ClusterError::RangeUnavailable { range });
            }
        }
        Ok(())
    }

    fn predict_excluding(
        &mut self,
        embedding: &[f32],
        w: MetricWeights,
        exclude: usize,
    ) -> Result<(ModelKind, Vec<f64>), ClusterError> {
        assert!(!self.authority.is_empty(), "empty RCS");
        let len = self.authority.len();
        let selectable = len - usize::from(exclude < len);
        assert!(
            selectable > 0,
            "KNN needs at least one non-excluded RCS entry"
        );
        let k = self.authority.config().k.clamp(1, selectable);
        let wire_exclude = if exclude < len {
            exclude as u64
        } else {
            u64::MAX
        };
        let ranges = self.lanes.len();

        // Per-range query frames. An empty shard's partial top-k is
        // empty; skip the trip entirely.
        let mut frames: Vec<Option<Frame>> = Vec::with_capacity(ranges);
        for range in 0..ranges {
            let shard_len = self.authority.shards()[range].len() as u64;
            frames.push((shard_len > 0).then(|| {
                Query {
                    epoch: self.epoch,
                    version: shard_len,
                    embedding: embedding.to_vec(),
                    k: k as u64,
                    exclude: wire_exclude,
                }
                .into_frame()
            }));
            // A NACK in the collect phase may need the repair frame.
            self.prime_load_frame(range);
        }

        // Issue phase: optimistically send each range's query to its
        // first candidate replica, in fixed range order, so the round
        // trips overlap instead of summing.
        let mut issued: Vec<Option<usize>> = vec![None; ranges];
        for range in 0..ranges {
            let Some(frame) = frames[range].as_ref() else {
                continue;
            };
            let lane = &mut self.lanes[range];
            let r = lane.candidates()[0];
            if lane.raw_send(range, &self.cfg, r, frame).is_ok() {
                issued[range] = Some(r);
            }
        }

        // Collect phase, fixed range order. Any optimistic failure is
        // handled (health, trace, repair) and the range falls back to the
        // full serial retry/failover loop.
        let mut merged: Vec<(usize, f32)> = Vec::with_capacity(k * ranges);
        for range in 0..ranges {
            let Some(frame) = frames[range].as_ref() else {
                continue;
            };
            let lane = &mut self.lanes[range];
            let mut fast = None;
            if let Some(r) = issued[range] {
                match lane.raw_recv(range, &self.cfg, r) {
                    Ok(f) if f.step != Step::ShardSendNack => fast = Some(f),
                    Ok(f) => lane.on_nack(range, &self.cfg, r, &f),
                    Err(_) => {}
                }
            }
            let reply = match fast {
                Some(f) => f,
                None => lane.call_range(range, &self.cfg, frame)?,
            };
            let topk =
                TopK::from_frame(&reply).map_err(|e| ClusterError::Protocol(e.to_string()))?;
            merged.extend(topk.entries.iter().map(|&(id, d)| (id as usize, d)));
        }
        merged.sort_unstable_by(knn_order);
        merged.truncate(k);
        Ok(knn_vote(
            merged.iter().map(|&(id, _)| self.authority.entry(id)),
            k,
            w,
        ))
    }

    /// The wire-batched fan-out: one [`QueryBatch`] frame per non-empty
    /// range carries the whole micro-batch, so a B-deep batch over R
    /// ranges pays R round trips instead of B×R. The per-query clamp,
    /// merge ([`knn_order`] sort + truncate) and [`knn_vote`] are the
    /// exact arithmetic of [`Self::predict_excluding`], so the batched
    /// path cannot move a bit. Mixed-version gates: a coordinator pinned
    /// below v2 serves the batch serially per query, and a lane whose
    /// replica NACKs `VersionSkew` is downgraded (sticky) to the same
    /// serial per-query service — either way, full answers or a typed
    /// error, never a partial merge.
    fn predict_batch(
        &mut self,
        queries: &[BatchPredictRequest<'_>],
    ) -> Result<Vec<(ModelKind, Vec<f64>)>, ClusterError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        if self.cfg.wire_version < Step::CoordSendQueryBatch.min_version() {
            // Coordinator-side version pin: never emit a batch frame.
            return queries
                .iter()
                .map(|q| self.predict_excluding(q.embedding, q.w, q.exclude))
                .collect();
        }
        assert!(!self.authority.is_empty(), "empty RCS");
        let len = self.authority.len();
        // Per-query clamp and wire exclusion — identical arithmetic to
        // predict_excluding (k depends on each query's exclusion).
        let per_query: Vec<(usize, u64)> = queries
            .iter()
            .map(|q| {
                let selectable = len - usize::from(q.exclude < len);
                assert!(
                    selectable > 0,
                    "KNN needs at least one non-excluded RCS entry"
                );
                let k = self.authority.config().k.clamp(1, selectable);
                let wire_exclude = if q.exclude < len {
                    q.exclude as u64
                } else {
                    u64::MAX
                };
                (k, wire_exclude)
            })
            .collect();
        let ranges = self.lanes.len();

        // Per-range batch frames: empty shards contribute nothing and
        // skip the trip; downgraded lanes serve per-query below.
        let mut frames: Vec<Option<Frame>> = Vec::with_capacity(ranges);
        for range in 0..ranges {
            let shard_len = self.authority.shards()[range].len() as u64;
            frames.push(
                (shard_len > 0 && !self.lanes[range].batch_downgraded).then(|| {
                    QueryBatch {
                        epoch: self.epoch,
                        version: shard_len,
                        queries: queries
                            .iter()
                            .zip(&per_query)
                            .map(|(q, &(k, wire_exclude))| BatchQuery {
                                embedding: q.embedding.to_vec(),
                                k: k as u64,
                                exclude: wire_exclude,
                            })
                            .collect(),
                    }
                    .into_frame()
                }),
            );
            self.prime_load_frame(range);
        }

        // Issue phase: the batch frame rides the same pipelined
        // first-candidate optimism as the per-query fan-out.
        let mut issued: Vec<Option<usize>> = vec![None; ranges];
        for range in 0..ranges {
            let Some(frame) = frames[range].as_ref() else {
                continue;
            };
            let lane = &mut self.lanes[range];
            let r = lane.candidates()[0];
            if lane.raw_send(range, &self.cfg, r, frame).is_ok() {
                issued[range] = Some(r);
            }
        }

        // Collect phase, fixed range order; one partial list per query
        // accumulates across ranges.
        let mut merged: Vec<Vec<(usize, f32)>> = queries.iter().map(|_| Vec::new()).collect();
        for range in 0..ranges {
            let shard_len = self.authority.shards()[range].len() as u64;
            if shard_len == 0 {
                continue;
            }
            let mut serve_serially = self.lanes[range].batch_downgraded;
            if let Some(frame) = frames[range].as_ref() {
                let lane = &mut self.lanes[range];
                let mut fast = None;
                if let Some(r) = issued[range] {
                    match lane.raw_recv(range, &self.cfg, r) {
                        Ok(f) if f.step != Step::ShardSendNack => {
                            fast = Some(BatchOutcome::Reply(f))
                        }
                        Ok(f) => {
                            if lane.nack_is_version_skew(range, r, &f) {
                                fast = Some(BatchOutcome::Downgrade);
                            } else {
                                lane.on_nack(range, &self.cfg, r, &f);
                            }
                        }
                        Err(_) => {}
                    }
                }
                let outcome = match fast {
                    Some(o) => o,
                    None => lane.call_range_batch(range, &self.cfg, frame)?,
                };
                match outcome {
                    BatchOutcome::Reply(reply) => {
                        let tb = TopKBatch::from_frame(&reply)
                            .map_err(|e| ClusterError::Protocol(e.to_string()))?;
                        if tb.lists.len() != queries.len() {
                            // Never a partial merge: a count mismatch is a
                            // protocol violation, not a short answer.
                            return Err(ClusterError::Protocol(format!(
                                "batched reply carries {} lists for {} queries",
                                tb.lists.len(),
                                queries.len()
                            )));
                        }
                        for (m, list) in merged.iter_mut().zip(&tb.lists) {
                            m.extend(list.iter().map(|&(id, d)| (id as usize, d)));
                        }
                    }
                    BatchOutcome::Downgrade => {
                        let lane = &mut self.lanes[range];
                        lane.batch_downgraded = true;
                        lane.obs.batch_downgrades.inc();
                        lane.sub.push(format!("batch-downgrade range={range}"));
                        serve_serially = true;
                    }
                }
            }
            if serve_serially {
                // Per-query v1 frames through the serial retry/failover
                // loop — the exact frames predict_excluding would send,
                // so the downgraded lane's answers are bit-identical.
                for (qi, (q, &(k, wire_exclude))) in queries.iter().zip(&per_query).enumerate() {
                    let frame = Query {
                        epoch: self.epoch,
                        version: shard_len,
                        embedding: q.embedding.to_vec(),
                        k: k as u64,
                        exclude: wire_exclude,
                    }
                    .into_frame();
                    let lane = &mut self.lanes[range];
                    let reply = lane.call_range(range, &self.cfg, &frame)?;
                    let topk = TopK::from_frame(&reply)
                        .map_err(|e| ClusterError::Protocol(e.to_string()))?;
                    merged[qi].extend(topk.entries.iter().map(|&(id, d)| (id as usize, d)));
                }
            }
        }

        // Per-query merge: the same sort/truncate/vote as the per-query
        // path, over the same per-range partial lists.
        Ok(queries
            .iter()
            .zip(per_query)
            .zip(merged)
            .map(|((q, (k, _)), mut m)| {
                m.sort_unstable_by(knn_order);
                m.truncate(k);
                knn_vote(m.iter().map(|&(id, _)| self.authority.entry(id)), k, q.w)
            })
            .collect())
    }

    fn push_entry(
        &mut self,
        graph: FeatureGraph,
        label: &DatasetLabel,
    ) -> Result<usize, ClusterError> {
        let global = self.authority.push_entry(graph, label);
        let range = self
            .authority
            .shards()
            .iter()
            .position(|s| s.ids().last() == Some(&global))
            .expect("pushed entry must land in some shard");
        let version_before = (self.authority.shards()[range].len() - 1) as u64;
        let push = Push {
            epoch: self.epoch,
            version: version_before,
            id: global as u64,
            embedding: self.authority.entry(global).embedding.clone(),
        };
        let frame = push.into_frame();
        // Prime *after* the authority push so repair reloads carry the
        // post-push table.
        self.prime_load_frame(range);
        let epoch = self.epoch;
        let lane = &mut self.lanes[range];
        // Candidates only: a demoted replica misses the push and is
        // resynced by the reload that follows its re-promotion.
        for r in lane.candidates() {
            let synced = match lane.raw_call(range, &self.cfg, r, &frame) {
                Ok(reply) => matches!(
                    PushAck::from_frame(&reply),
                    Ok(ack) if ack.epoch == epoch && ack.version == version_before + 1
                ),
                Err(_) => false,
            };
            if synced {
                lane.sub.push(format!(
                    "push range={range} r={r} id={global} v={}",
                    version_before + 1
                ));
            } else {
                // A push retry is not idempotent (the shard may have
                // applied it before losing the ack); reload is.
                let _ = lane.load_replica(range, &self.cfg, r);
            }
        }
        Ok(global)
    }

    fn refresh_and_snapshot(&mut self) -> Result<u64, ClusterError> {
        self.authority.refresh_embeddings();
        self.epoch += 1;
        self.trace.push(format!("snapshot-epoch {}", self.epoch));
        for range in 0..self.lanes.len() {
            self.prime_load_frame(range);
            let table = self.make_table(range);
            let (epoch, version) = (table.epoch, table.version());
            let frame = SnapshotEpoch(table).into_frame();
            let lane = &mut self.lanes[range];
            let mut staged = 0usize;
            for r in lane.candidates() {
                let ok = match lane.raw_call(range, &self.cfg, r, &frame) {
                    Ok(reply) => matches!(
                        EpochAck::from_frame(&reply),
                        Ok(ack) if (ack.epoch, ack.version) == (epoch, version)
                    ),
                    Err(_) => false,
                };
                if ok {
                    staged += 1;
                    lane.sub
                        .push(format!("epoch-ack range={range} r={r} epoch={epoch}"));
                } else if lane.load_replica(range, &self.cfg, r).is_ok() {
                    // Reload carries the new epoch's table, so it counts.
                    staged += 1;
                }
            }
            if staged == 0 {
                lane.sub.push(format!("range-dark range={range}"));
                return Err(ClusterError::RangeUnavailable { range });
            }
        }
        Ok(self.epoch)
    }

    fn heartbeat(&mut self) -> ClusterHealth {
        for range in 0..self.lanes.len() {
            self.prime_load_frame(range);
            let want_version = self.authority.shards()[range].len() as u64;
            let epoch = self.epoch;
            let lane = &mut self.lanes[range];
            // All replicas, demoted included: the heartbeat is the
            // re-promotion path.
            for r in 0..lane.replicas.len() {
                self.ping_nonce += 1;
                let nonce = self.ping_nonce;
                // raw_call failures already record health + trace; only a
                // successful reply needs inspecting here.
                if let Ok(reply) = lane.raw_call(range, &self.cfg, r, &Ping { nonce }.into_frame())
                {
                    match Pong::from_frame(&reply) {
                        Ok(pong)
                            if pong.nonce == nonce
                                && pong.epoch == epoch
                                && pong.version == want_version => {}
                        Ok(_) => {
                            lane.sub.push(format!("stale-pong range={range} r={r}"));
                            let _ = lane.load_replica(range, &self.cfg, r);
                        }
                        Err(e) => {
                            lane.sub.push(format!("bad-pong range={range} r={r}: {e}"));
                            lane.replicas[r].conn = None;
                        }
                    }
                }
            }
        }
        self.health()
    }

    fn shutdown_cluster(&mut self) {
        let frame = crate::protocol::Shutdown.into_frame();
        for range in 0..self.lanes.len() {
            let lane = &mut self.lanes[range];
            for r in 0..lane.replicas.len() {
                let _ = lane.raw_call(range, &self.cfg, r, &frame);
                lane.replicas[r].conn = None;
            }
        }
    }
}

/// The coordinator. All methods take `&self` (one internal mutex
/// serializes operations — see the module docs), so a shared
/// `Arc<ClusterCoordinator>` can sit behind `ce-serve`'s micro-batcher as
/// an [`AdvisorBackend`] like any in-process backend.
pub struct ClusterCoordinator {
    inner: Mutex<CoordInner>,
    /// Clone of the config's registry, held outside the mutex so
    /// [`Self::metrics`] exposes local counters without touching the
    /// serving lock.
    metrics: MetricsRegistry,
}

impl ClusterCoordinator {
    /// Tolerates mutex poisoning: a panic mid-operation leaves at worst a
    /// stale replica or an unmerged sub-trace, and both are repaired by
    /// the same reload/merge discipline as any other inconsistency.
    fn lock(&self) -> MutexGuard<'_, CoordInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Builds a coordinator over `authority` with `connectors[range][r]`
    /// dialing the replicas of each authority shard range, rejecting an
    /// invalid topology (mismatched range count, a range with zero
    /// replicas) at build time. Call [`Self::bootstrap`] before serving.
    pub fn try_new(
        mut authority: ShardedAdvisor,
        connectors: Vec<Vec<Box<dyn Connector>>>,
        cfg: ClusterConfig,
    ) -> Result<Self, AdvisorError> {
        if let Some(index) = &cfg.index {
            authority.install_index(index, &cfg.metrics)?;
        }
        if connectors.len() != authority.num_shards() {
            return Err(AdvisorError::InvalidConfig(format!(
                "replica sets ({}) must match authority shard ranges ({})",
                connectors.len(),
                authority.num_shards()
            )));
        }
        if let Some(range) = connectors.iter().position(|r| r.is_empty()) {
            return Err(AdvisorError::InvalidConfig(format!(
                "range {range} has zero replicas; every range needs at least one"
            )));
        }
        let lanes = connectors
            .into_iter()
            .enumerate()
            .map(|(range, conns)| RangeLane {
                replicas: conns
                    .into_iter()
                    .map(|connector| Replica {
                        health: ReplicaHealth::new(connector.label()),
                        connector,
                        conn: None,
                    })
                    .collect(),
                // splitmix-style spread so lane streams differ even for
                // adjacent ranges under any seed.
                rng: StdRng::seed_from_u64(
                    cfg.seed ^ (range as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                sub: Vec::new(),
                load_frame: None,
                batch_downgraded: false,
                obs: LaneObs::new(&cfg.metrics, range),
                rtt_span: None,
            })
            .collect();
        let metrics = cfg.metrics.clone();
        Ok(ClusterCoordinator {
            inner: Mutex::new(CoordInner {
                authority,
                cfg,
                epoch: 0,
                lanes,
                ping_nonce: 0,
                trace: Vec::new(),
            }),
            metrics,
        })
    }

    /// [`Self::try_new`] that panics on an invalid topology — the
    /// historical constructor shape, kept for call sites that construct
    /// from static topology.
    pub fn new(
        authority: ShardedAdvisor,
        connectors: Vec<Vec<Box<dyn Connector>>>,
        cfg: ClusterConfig,
    ) -> Self {
        Self::try_new(authority, connectors, cfg).expect("valid cluster topology")
    }

    /// Convenience: a coordinator over a [`crate::sim::SimNet`] with
    /// `replicas_per_range` replicas per authority range, numbered
    /// `range * replicas_per_range + r` on the net (the flat numbering
    /// [`crate::fault::FaultEvent::replica`] uses).
    pub fn over_sim(
        authority: ShardedAdvisor,
        net: &crate::sim::SimNet,
        replicas_per_range: usize,
        cfg: ClusterConfig,
    ) -> Self {
        let ranges = authority.num_shards();
        let connectors = (0..ranges)
            .map(|range| {
                (0..replicas_per_range)
                    .map(|r| {
                        Box::new(net.connector(range * replicas_per_range + r))
                            as Box<dyn Connector>
                    })
                    .collect()
            })
            .collect();
        ClusterCoordinator::new(authority, connectors, cfg)
    }

    /// Current serving epoch.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Encoder generation of the authority (bumps only on adaptation —
    /// the cache-invalidation signal, not the epoch).
    pub fn generation(&self) -> u64 {
        self.lock().authority.generation()
    }

    /// Number of RCS entries in the authority.
    pub fn rcs_len(&self) -> usize {
        self.lock().authority.len()
    }

    /// Embeds a feature graph on the authority encoder.
    pub fn embed_graph(&self, g: &FeatureGraph) -> Vec<f32> {
        self.lock().authority.embed_graph(g)
    }

    /// A snapshot of the ordered event trace so far (wall-clock free:
    /// dials, failures, reloads, failovers, demotions, snapshots — same
    /// seed and same fault plan give the same trace, byte for byte).
    pub fn trace(&self) -> Vec<String> {
        self.lock().trace.clone()
    }

    /// Drains the event trace.
    pub fn take_trace(&self) -> Vec<String> {
        std::mem::take(&mut self.lock().trace)
    }

    /// Point-in-time health snapshot.
    pub fn health(&self) -> ClusterHealth {
        self.lock().health()
    }

    /// Loads every replica with its range's table and verifies at least
    /// one live replica per range. Idempotent; also usable as a
    /// whole-cluster resync (and, for demoted replicas, re-promotion).
    pub fn bootstrap(&self) -> Result<(), ClusterError> {
        let mut inner = self.lock();
        let out = inner.bootstrap();
        inner.merge_trace();
        out
    }

    /// KNN prediction excluding one global RCS index, answered from the
    /// wire via the pipelined range fan-out. Bit-identical to
    /// [`ShardedAdvisor::predict_excluding`] on the authority (see the
    /// module docs).
    pub fn predict_excluding(
        &self,
        embedding: &[f32],
        w: MetricWeights,
        exclude: usize,
    ) -> Result<(ModelKind, Vec<f64>), ClusterError> {
        let mut inner = self.lock();
        let out = inner.predict_excluding(embedding, w, exclude);
        inner.merge_trace();
        out
    }

    /// KNN prediction from an embedding (no exclusion).
    pub fn predict_from_embedding(
        &self,
        embedding: &[f32],
        w: MetricWeights,
    ) -> Result<(ModelKind, Vec<f64>), ClusterError> {
        self.predict_excluding(embedding, w, usize::MAX)
    }

    /// Batched KNN prediction over the wire: one `QueryBatch` frame per
    /// shard range carries the whole micro-batch (protocol v2), so the
    /// per-range round trip is paid once per *batch* instead of once per
    /// query. Answers are bit-identical to per-query
    /// [`Self::predict_excluding`] — same clamp, same merge, same vote —
    /// and mixed-version peers degrade to exactly that per-query path
    /// (see the `batch-downgrade` trace line), never to a partial merge.
    pub fn predict_batch(
        &self,
        queries: &[BatchPredictRequest<'_>],
    ) -> Result<Vec<(ModelKind, Vec<f64>)>, ClusterError> {
        let mut inner = self.lock();
        let out = inner.predict_batch(queries);
        inner.merge_trace();
        out
    }

    /// Full recommendation from a feature graph: embed on the authority
    /// encoder, KNN over the wire.
    pub fn recommend_graph(
        &self,
        g: &FeatureGraph,
        w: MetricWeights,
    ) -> Result<ModelKind, ClusterError> {
        let mut inner = self.lock();
        let x = inner.authority.embed_graph(g);
        let out = inner.predict_excluding(&x, w, usize::MAX).map(|(m, _)| m);
        inner.merge_trace();
        out
    }

    /// Adds a freshly labeled dataset: authority first, then a
    /// version-guarded [`Push`] to every candidate replica of the
    /// receiving range. Replicas that miss the push (down, demoted, NACK,
    /// lost ack) are resynced by reload — immediately when possible,
    /// otherwise lazily by the next query's NACK or their re-promotion
    /// heartbeat. Returns the new global RCS index.
    pub fn push_entry(
        &self,
        graph: FeatureGraph,
        label: &DatasetLabel,
    ) -> Result<usize, ClusterError> {
        let mut inner = self.lock();
        let out = inner.push_entry(graph, label);
        inner.merge_trace();
        out
    }

    /// Refreshes every authority embedding and stages the result as a new
    /// epoch on all candidate replicas ([`SnapshotEpoch`]): shards keep
    /// the previous epoch serving while the swap propagates, and the
    /// coordinator pins queries to the new epoch only once every range
    /// has at least one replica confirmed on it. Returns the new epoch.
    pub fn refresh_and_snapshot(&self) -> Result<u64, ClusterError> {
        let mut inner = self.lock();
        let out = inner.refresh_and_snapshot();
        inner.merge_trace();
        out
    }

    /// Pings every replica once — demoted ones included; this is the
    /// re-promotion path — recording health and proactively reloading any
    /// replica that answers with a stale or missing table. Returns the
    /// post-probe health snapshot — callers should surface
    /// [`ClusterHealth::report`] when it is degraded.
    pub fn heartbeat(&self) -> ClusterHealth {
        let mut inner = self.lock();
        let out = inner.heartbeat();
        inner.merge_trace();
        out
    }

    /// Sends a clean shutdown to every replica (best effort).
    pub fn shutdown_cluster(&self) {
        let mut inner = self.lock();
        inner.shutdown_cluster();
        inner.merge_trace();
    }

    /// The coordinator's *local* metrics snapshot — per-range RTT,
    /// retries, failovers, NACKs, reloads, demotions, wire bytes per
    /// step. Reads only pre-registered atomics; does **not** take the
    /// coordinator mutex and sends nothing over the wire, so it is safe
    /// to call from a scrape thread while requests are in flight.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Cluster-wide aggregation: the local snapshot merged with every
    /// replica's shard snapshot, fetched over [`Step::CoordSendMetrics`]
    /// and tagged with `range`/`replica` labels before merging. Replicas
    /// that are down, v1-pinned (they NACK the v2 step) or answer a
    /// corrupt snapshot are skipped, never an error. Unlike
    /// [`Self::metrics`] this serializes behind the coordinator mutex and
    /// does cross the wire — under `SimNet` the fetches advance the
    /// simulated step counter like any other frames, so call it after a
    /// scripted fault workload, not in the middle of one.
    pub fn cluster_metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let mut inner = self.lock();
        if inner.cfg.wire_version >= Step::CoordSendMetrics.min_version() {
            let cfg = inner.cfg.clone();
            for range in 0..inner.lanes.len() {
                let lane = &mut inner.lanes[range];
                for r in 0..lane.replicas.len() {
                    if let Some(shard) = lane.fetch_metrics(&cfg, r) {
                        snap.merge(
                            &shard
                                .with_label("range", &range.to_string())
                                .with_label("replica", &r.to_string()),
                        );
                    }
                }
            }
        }
        snap
    }
}

impl AdvisorBackend for ClusterCoordinator {
    fn rcs_len(&self) -> usize {
        ClusterCoordinator::rcs_len(self)
    }

    /// Epochs track *refreshes* on the wire; the encoder only changes
    /// through the authority's adaptation path, so the authority's
    /// generation is the correct cache-invalidation signal.
    fn generation(&self) -> u64 {
        ClusterCoordinator::generation(self)
    }

    fn feature_config(&self) -> FeatureConfig {
        self.lock().authority.config().feature
    }

    fn embed_graph(&self, g: &FeatureGraph) -> Vec<f32> {
        ClusterCoordinator::embed_graph(self, g)
    }

    fn embed_graph_batch(&self, graphs: &[&FeatureGraph]) -> Vec<Vec<f32>> {
        self.lock().authority.embed_graph_batch(graphs)
    }

    fn predict_excluding(
        &self,
        embedding: &[f32],
        w: MetricWeights,
        exclude: usize,
    ) -> Result<(ModelKind, Vec<f64>), AdvisorError> {
        ClusterCoordinator::predict_excluding(self, embedding, w, exclude)
            .map_err(AdvisorError::from)
    }

    /// Overrides the per-query default with the wire-batched fan-out:
    /// this is where `ce-serve`'s micro-batcher stops paying one round
    /// trip per request.
    fn predict_batch(
        &self,
        queries: &[BatchPredictRequest<'_>],
    ) -> Result<Vec<(ModelKind, Vec<f64>)>, AdvisorError> {
        ClusterCoordinator::predict_batch(self, queries).map_err(AdvisorError::from)
    }

    fn distance_to_nearest(&self, x: &[f32]) -> f32 {
        self.lock().authority.distance_to_embedding(x)
    }

    fn drift_detector(&self) -> autoce::online::DriftDetector {
        self.lock().authority.drift_detector()
    }

    fn push_entry(
        &mut self,
        graph: FeatureGraph,
        label: &DatasetLabel,
    ) -> Result<usize, AdvisorError> {
        ClusterCoordinator::push_entry(self, graph, label).map_err(AdvisorError::from)
    }

    fn refresh(&mut self) -> Result<u64, AdvisorError> {
        self.refresh_and_snapshot().map_err(AdvisorError::from)
    }

    /// The local coordinator snapshot (lock-free; see
    /// [`ClusterCoordinator::metrics`]). `ce-serve`'s
    /// `ServeHandle::metrics_snapshot` merges this into its own, so a
    /// service fronting a cluster reports both layers in one exposition.
    /// For shard-side data too, call
    /// [`ClusterCoordinator::cluster_metrics`] explicitly — the trait
    /// hook must stay side-effect free and off the wire.
    fn metrics(&self) -> MetricsSnapshot {
        ClusterCoordinator::metrics(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::sim::SimNet;
    use autoce::{AutoCe, AutoCeConfig, RcsEntry};
    use ce_gnn::{DmlConfig, GinEncoder};

    fn synthetic_flat(n: usize, k: usize) -> AutoCe {
        let entries: Vec<RcsEntry> = (0..n)
            .map(|i| {
                let v = i as f32 * 0.25;
                RcsEntry {
                    name: format!("e{i}"),
                    graph: FeatureGraph {
                        vertices: vec![vec![v, 1.0 - v, 0.5, 0.25]],
                        edges: vec![vec![0.0]],
                    },
                    embedding: vec![v, v * v, 1.0 - v],
                    kinds: vec![ModelKind::Postgres, ModelKind::LwXgb, ModelKind::LwNn],
                    sa: vec![(i % 3) as f64 / 2.0, ((i + 1) % 3) as f64 / 2.0, 0.5],
                    se: vec![0.5, (i % 2) as f64, 1.0 - (i % 2) as f64],
                }
            })
            .collect();
        let config = AutoCeConfig {
            k,
            incremental: None,
            dml: DmlConfig {
                hidden: vec![8],
                embed_dim: 3,
                ..DmlConfig::default()
            },
            ..AutoCeConfig::default()
        };
        AutoCe::from_parts(config, GinEncoder::new(4, &[8], 3, 7), entries)
    }

    fn queries() -> Vec<Vec<f32>> {
        vec![
            vec![0.0f32, 0.0, 0.0],
            vec![1.3, 0.4, -0.2],
            vec![2.5, 6.25, -1.5],
        ]
    }

    #[test]
    fn healthy_cluster_matches_in_process_sharded_advisor() {
        let flat = synthetic_flat(11, 3);
        let w = MetricWeights::new(0.7);
        for ranges in [1usize, 3] {
            let sharded = ShardedAdvisor::from_advisor(&flat, ranges);
            let net = SimNet::new(ranges * 2, FaultPlan::none());
            let coord =
                ClusterCoordinator::over_sim(sharded.clone(), &net, 2, ClusterConfig::no_sleep());
            coord.bootstrap().expect("bootstrap");
            for x in queries() {
                for exclude in [usize::MAX, 0, 10] {
                    let want = sharded.predict_excluding(&x, w, exclude);
                    let got = coord.predict_excluding(&x, w, exclude).expect("predict");
                    assert_eq!(want, got, "ranges={ranges} exclude={exclude}");
                }
            }
            assert!(!coord.health().degraded(), "no failures on a healthy net");
        }
    }

    #[test]
    fn failover_is_bit_identical_and_reported() {
        let flat = synthetic_flat(9, 3);
        let w = MetricWeights::new(0.5);
        let sharded = ShardedAdvisor::from_advisor(&flat, 2);
        // Replica 0 of range 0 dies right after bootstrap (4 replicas ×
        // (dial + load) = 8 steps) and never comes back.
        let plan = FaultPlan::none().with_kill(9, 0);
        let net = SimNet::new(4, plan);
        let coord =
            ClusterCoordinator::over_sim(sharded.clone(), &net, 2, ClusterConfig::no_sleep());
        coord.bootstrap().expect("bootstrap");
        for x in queries() {
            let want = sharded.predict_from_embedding(&x, w);
            let got = coord.predict_from_embedding(&x, w).expect("predict");
            assert_eq!(want, got, "failover must not change a bit");
        }
        let health = coord.health();
        assert!(health.degraded(), "the dead replica must be reported");
        assert!(!health.any_range_dark(), "its sibling still serves");
        assert!(
            coord.trace().iter().any(|l| l.starts_with("failover")),
            "trace records the failover: {:?}",
            coord.trace()
        );
    }

    #[test]
    fn all_replicas_down_is_an_explicit_error() {
        let flat = synthetic_flat(5, 2);
        let sharded = ShardedAdvisor::from_advisor(&flat, 1);
        // Both replicas die after bootstrap (2 × (dial + load) = 4 steps).
        let plan = FaultPlan::none().with_kill(5, 0).with_kill(5, 1);
        let net = SimNet::new(2, plan);
        let coord = ClusterCoordinator::over_sim(sharded, &net, 2, ClusterConfig::no_sleep());
        coord.bootstrap().expect("bootstrap");
        let got = coord.predict_from_embedding(&[0.0, 0.0, 0.0], MetricWeights::new(0.5));
        assert_eq!(got, Err(ClusterError::RangeUnavailable { range: 0 }));
        assert!(coord.health().any_range_dark());
        assert!(coord.health().report().contains("DARK"));
    }

    #[test]
    fn push_and_snapshot_keep_replicas_in_lockstep() {
        let flat = synthetic_flat(6, 2);
        let sharded = ShardedAdvisor::from_advisor(&flat, 2);
        let mut mirror = sharded.clone();
        let net = SimNet::new(4, FaultPlan::none());
        let coord = ClusterCoordinator::over_sim(sharded, &net, 2, ClusterConfig::no_sleep());
        coord.bootstrap().expect("bootstrap");
        let label = DatasetLabel {
            dataset: "new".into(),
            performances: mirror.shards()[0].entries()[0]
                .kinds
                .iter()
                .enumerate()
                .map(|(i, &kind)| ce_testbed::ModelPerformance {
                    kind,
                    qerror_mean: 1.0 + i as f64,
                    qerror_p50: 1.0,
                    qerror_p95: 1.0,
                    qerror_p99: 1.0,
                    latency_mean_us: 10.0 * (i + 1) as f64,
                    train_time_ms: 1.0,
                })
                .collect(),
        };
        let graph = FeatureGraph {
            vertices: vec![vec![0.3, 0.3, 0.3, 0.3]],
            edges: vec![vec![0.0]],
        };
        let id = coord.push_entry(graph.clone(), &label).expect("push");
        assert_eq!(id, mirror.push_entry(graph, &label));
        let w = MetricWeights::new(0.7);
        for x in queries() {
            assert_eq!(
                mirror.predict_from_embedding(&x, w),
                coord.predict_from_embedding(&x, w).expect("predict"),
                "post-push answers must match the in-process mirror"
            );
        }
        // Epoch swap: refresh embeddings on both, then compare again.
        mirror.refresh_embeddings();
        let epoch = coord.refresh_and_snapshot().expect("snapshot");
        assert_eq!(epoch, 1);
        for x in queries() {
            assert_eq!(
                mirror.predict_from_embedding(&x, w),
                coord.predict_from_embedding(&x, w).expect("predict"),
                "post-snapshot answers must match"
            );
        }
        assert!(!coord.heartbeat().degraded());
    }

    #[test]
    fn dead_replica_is_demoted_and_heartbeat_repromotes() {
        let flat = synthetic_flat(9, 3);
        let w = MetricWeights::new(0.5);
        let sharded = ShardedAdvisor::from_advisor(&flat, 1);
        // Bootstrap: 2 × (dial + load) = steps 1-4. Replica 0 dies at the
        // first post-bootstrap interaction (step 5) and restarts — empty —
        // just before the heartbeat's re-dial (step 11; see the step
        // arithmetic in the comments below).
        let plan = FaultPlan::none().with_kill(5, 0).with_restart(11, 0);
        let net = SimNet::new(2, plan);
        let coord =
            ClusterCoordinator::over_sim(sharded.clone(), &net, 2, ClusterConfig::no_sleep());
        coord.bootstrap().expect("bootstrap");

        // Query 1: optimistic send to r=0 executes at step 5 (killed →
        // parked error, streak 1), fallback dials r=0 three more times
        // (steps 6-8 → streak 4, demotion at streak 3), fails over to r=1
        // (step 9, cached conn) and still answers bit-identically.
        let x = &queries()[0];
        let want = sharded.predict_from_embedding(x, w);
        assert_eq!(coord.predict_from_embedding(x, w).expect("predict"), want);
        let trace = coord.trace();
        assert!(
            trace.iter().any(|l| l == "demote range=0 r=0 streak=3"),
            "demotion must be traced: {trace:?}"
        );
        assert!(coord.health().ranges[0][0].demoted);
        assert!(coord.health().report().contains("(demoted)"));

        // Query 2 (step 10): the demoted replica is skipped — degraded
        // mode stops paying a refused dial per request.
        let failures_before = coord.health().ranges[0][0].total_failures;
        assert_eq!(coord.predict_from_embedding(x, w).expect("predict"), want);
        assert_eq!(
            coord.health().ranges[0][0].total_failures,
            failures_before,
            "a demoted replica must not be dialed by the query path"
        );

        // Heartbeat: the re-dial of r=0 lands at step 11 where the
        // restart applies — the ping succeeds (re-promotion), the pong
        // exposes the empty table (stale-pong), and the reload repairs it.
        coord.heartbeat();
        let trace = coord.trace();
        assert!(
            trace.iter().any(|l| l == "repromote range=0 r=0"),
            "re-promotion must be traced: {trace:?}"
        );
        assert!(
            trace
                .iter()
                .any(|l| l.starts_with("stale-pong range=0 r=0")),
            "restarted-empty replica must be caught stale: {trace:?}"
        );
        assert!(!coord.health().ranges[0][0].demoted);

        // Replica 0 is first candidate again and serves bit-identically.
        for x in queries() {
            assert_eq!(
                coord.predict_from_embedding(&x, w).expect("predict"),
                sharded.predict_from_embedding(&x, w)
            );
        }
        assert!(!coord.health().any_range_dark());
    }

    #[test]
    fn builder_validates_at_build_time() {
        assert!(matches!(
            ClusterConfig::builder().max_attempts_per_replica(0).build(),
            Err(AdvisorError::InvalidConfig(_))
        ));
        assert!(matches!(
            ClusterConfig::builder().demote_after(0).build(),
            Err(AdvisorError::InvalidConfig(_))
        ));
        assert!(matches!(
            ClusterConfig::builder()
                .request_deadline(Duration::ZERO)
                .build(),
            Err(AdvisorError::InvalidConfig(_)),
        ));
        // Zero deadline without retries is allowed (nothing to burn).
        assert!(ClusterConfig::builder()
            .request_deadline(Duration::ZERO)
            .max_attempts_per_replica(1)
            .build()
            .is_ok());
        let cfg = ClusterConfig::builder()
            .demote_after(2)
            .seed(7)
            .no_sleep()
            .build()
            .expect("valid");
        assert_eq!((cfg.demote_after, cfg.seed), (2, 7));
        assert!(cfg.backoff_base.is_zero());
    }

    #[test]
    fn try_new_rejects_zero_replica_ranges() {
        let flat = synthetic_flat(4, 2);
        let sharded = ShardedAdvisor::from_advisor(&flat, 2);
        let net = SimNet::new(1, FaultPlan::none());
        let connectors: Vec<Vec<Box<dyn Connector>>> =
            vec![vec![Box::new(net.connector(0))], vec![]];
        assert!(matches!(
            ClusterCoordinator::try_new(sharded, connectors, ClusterConfig::no_sleep()),
            Err(AdvisorError::InvalidConfig(_))
        ));
    }

    #[test]
    fn metrics_are_a_read_only_side_channel() {
        let flat = synthetic_flat(9, 3);
        let w = MetricWeights::new(0.5);
        // Same scripted fault sequence as the failover test: replica 0 of
        // range 0 dies after bootstrap.
        let run = |metrics: MetricsRegistry| {
            let sharded = ShardedAdvisor::from_advisor(&flat, 2);
            let plan = FaultPlan::none().with_kill(9, 0);
            let net = SimNet::new(4, plan);
            let cfg = ClusterConfig::builder()
                .no_sleep()
                .metrics(metrics)
                .build()
                .expect("valid config");
            let coord = ClusterCoordinator::over_sim(sharded, &net, 2, cfg);
            coord.bootstrap().expect("bootstrap");
            let answers: Vec<_> = queries()
                .iter()
                .map(|x| coord.predict_from_embedding(x, w).expect("predict"))
                .collect();
            (coord, answers)
        };

        let (instrumented, a1) = run(MetricsRegistry::new_logical());
        let (bare, a2) = run(MetricsRegistry::disabled());
        // Enabling metrics changes no answer bit and no trace byte.
        assert_eq!(a1, a2);
        assert_eq!(instrumented.trace(), bare.trace());
        assert!(bare.metrics().is_empty(), "disabled registry stays empty");

        // Local snapshot: the scripted failure shows up as counters.
        let local = instrumented.metrics();
        assert!(local.counter("ce_cluster_replica_failures_total", &[("range", "0")]) > 0);
        assert!(local.counter("ce_cluster_failovers_total", &[("range", "0")]) > 0);
        assert!(local.counter("ce_cluster_retries_total", &[("range", "0")]) > 0);
        let (rtt_sum, rtt_count) = local.histogram_totals("ce_cluster_rtt_ns", &[("range", "1")]);
        assert!(rtt_count > 0 && rtt_sum > 0, "logical RTT spans recorded");
        assert!(
            local.counter(
                "ce_cluster_wire_bytes_out_total",
                &[("step", "coord_send_query")]
            ) > 0
        );
        assert!(
            local.counter(
                "ce_cluster_wire_bytes_in_total",
                &[("step", "shard_send_topk")]
            ) > 0
        );

        // Cluster-wide aggregation pulls shard snapshots, tagged per
        // replica; the dead replica is skipped silently.
        let cluster = instrumented.cluster_metrics();
        assert!(
            cluster.counter(
                "ce_shard_requests_total",
                &[
                    ("step", "coord_send_query"),
                    ("range", "1"),
                    ("replica", "0")
                ],
            ) > 0,
            "shard-side samples carry range/replica tags:\n{}",
            cluster.render_prometheus()
        );
        // Aggregation is itself side-effect free on the trace.
        assert_eq!(instrumented.trace(), bare.trace());

        // A v1-pinned coordinator never emits the v2 metrics step: the
        // aggregate degrades to the local snapshot.
        let sharded = ShardedAdvisor::from_advisor(&flat, 2);
        let net = SimNet::new(4, FaultPlan::none());
        let cfg = ClusterConfig::builder()
            .no_sleep()
            .wire_version(1)
            .metrics(MetricsRegistry::new_logical())
            .build()
            .expect("valid config");
        let pinned = ClusterCoordinator::over_sim(sharded, &net, 2, cfg);
        pinned.bootstrap().expect("bootstrap");
        let steps_before = net.step();
        let agg = pinned.cluster_metrics();
        assert_eq!(
            net.step(),
            steps_before,
            "v1 pin keeps metrics off the wire"
        );
        assert_eq!(agg, pinned.metrics());
    }

    #[test]
    fn coordinator_serves_through_the_backend_trait() {
        let flat = synthetic_flat(7, 3);
        let w = MetricWeights::new(0.6);
        let sharded = ShardedAdvisor::from_advisor(&flat, 2);
        let net = SimNet::new(4, FaultPlan::none());
        let coord =
            ClusterCoordinator::over_sim(sharded.clone(), &net, 2, ClusterConfig::no_sleep());
        coord.bootstrap().expect("bootstrap");
        let backend: &dyn AdvisorBackend = &coord;
        assert_eq!(backend.rcs_len(), 7);
        assert_eq!(backend.generation(), sharded.generation());
        for x in queries() {
            assert_eq!(
                backend.predict_from_embedding(&x, w).expect("predict"),
                sharded.predict_from_embedding(&x, w),
                "trait path must be the same wire path"
            );
        }
    }
}
