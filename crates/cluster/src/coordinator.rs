//! The cluster coordinator: the authority copy of the sharded advisor
//! plus the replicated wire fan-out.
//!
//! # Authority-first discipline
//!
//! The coordinator owns a full [`ShardedAdvisor`] (the *authority*):
//! every mutation — push, embedding refresh, epoch advance — applies to
//! the authority first, and remote shard tables are pure derived state
//! (`(ids, embeddings)` projections of one authority range). Any replica
//! inconsistency, however it arose (missed push, restart, torn frame), is
//! repaired the same way: reload the authority's current table. That one
//! rule makes failure handling boring, which is the point.
//!
//! # Bit-identity under failure
//!
//! Partial top-k answers come off the wire, but every float they carry
//! was computed by the same `euclidean` over embedding bits that traveled
//! bit-exactly, in the same slot order, under the same
//! [`knn_order`]-based select/truncate/sort as the in-process
//! [`ShardedAdvisor`]. The merge and [`knn_vote`] run coordinator-side on
//! authority metadata. Replicas of a range hold identical tables (they
//! NACK rather than serve stale ones), so *which* replica answers — first
//! choice, retry, or failover — cannot change a single bit of the
//! recommendation. With 0, 1, or R−1 replicas of every range down, the
//! answer equals the flat advisor's; only when every replica of some
//! range is unreachable does the coordinator fail, explicitly, with
//! [`ClusterError::RangeUnavailable`].

use crate::health::{ClusterHealth, ReplicaHealth};
use crate::protocol::{
    EpochAck, EpochTable, Frame, Load, LoadAck, Message, Nack, NackCode, Ping, Pong, Push, PushAck,
    Query, SnapshotEpoch, Step, TopK,
};
use crate::transport::{Conn, Connector, WireError};
use autoce::{knn_order, knn_vote};
use ce_features::FeatureGraph;
use ce_models::ModelKind;
use ce_serve::ShardedAdvisor;
use ce_testbed::{DatasetLabel, MetricWeights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Robustness knobs for the wire fan-out.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-request round-trip deadline.
    pub request_deadline: Duration,
    /// Attempts per replica before failing over to the next one.
    pub max_attempts_per_replica: u32,
    /// Base of the exponential backoff between retries.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed for backoff jitter (jitter is deterministic given the seed
    /// and the failure sequence — it never appears in the event trace).
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            request_deadline: Duration::from_secs(2),
            max_attempts_per_replica: 3,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(100),
            seed: 0xc105,
        }
    }
}

impl ClusterConfig {
    /// A config with zero backoff sleeps — what the deterministic
    /// gauntlet uses so fault sweeps run at memory speed.
    pub fn no_sleep() -> Self {
        ClusterConfig {
            backoff_base: Duration::ZERO,
            backoff_max: Duration::ZERO,
            ..ClusterConfig::default()
        }
    }
}

/// A terminal cluster failure (retries and failover already exhausted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Every replica of `range` is unreachable or unusable.
    RangeUnavailable {
        /// The dark range.
        range: usize,
    },
    /// A peer answered something protocol-violating that retries cannot
    /// fix.
    Protocol(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::RangeUnavailable { range } => {
                write!(f, "no live replica for shard range {range}")
            }
            ClusterError::Protocol(d) => write!(f, "protocol violation: {d}"),
        }
    }
}

impl std::error::Error for ClusterError {}

struct Replica {
    connector: Box<dyn Connector>,
    conn: Option<Box<dyn Conn>>,
    health: ReplicaHealth,
}

/// The coordinator. Single-threaded by design: one coordinator instance
/// serves one request at a time (the concurrency story lives a layer up,
/// in `ce-serve`'s micro-batcher), which keeps retries, failover and the
/// event trace strictly ordered — and therefore reproducible.
pub struct ClusterCoordinator {
    authority: ShardedAdvisor,
    cfg: ClusterConfig,
    /// Current serving epoch (the generation tag extended to the wire).
    epoch: u64,
    /// `replicas[range][r]`, fixed preference order within a range.
    replicas: Vec<Vec<Replica>>,
    rng: StdRng,
    ping_nonce: u64,
    trace: Vec<String>,
}

impl ClusterCoordinator {
    /// Builds a coordinator over `authority` with `connectors[range][r]`
    /// dialing the replicas of each authority shard range. Call
    /// [`Self::bootstrap`] before serving.
    pub fn new(
        authority: ShardedAdvisor,
        connectors: Vec<Vec<Box<dyn Connector>>>,
        cfg: ClusterConfig,
    ) -> Self {
        assert_eq!(
            connectors.len(),
            authority.num_shards(),
            "one replica set per authority shard range"
        );
        assert!(
            connectors.iter().all(|r| !r.is_empty()),
            "every range needs at least one replica"
        );
        let replicas = connectors
            .into_iter()
            .map(|range| {
                range
                    .into_iter()
                    .map(|connector| Replica {
                        health: ReplicaHealth::new(connector.label()),
                        connector,
                        conn: None,
                    })
                    .collect()
            })
            .collect();
        let seed = cfg.seed;
        ClusterCoordinator {
            authority,
            cfg,
            epoch: 0,
            replicas,
            rng: StdRng::seed_from_u64(seed),
            ping_nonce: 0,
            trace: Vec::new(),
        }
    }

    /// Convenience: a coordinator over a [`crate::sim::SimNet`] with
    /// `replicas_per_range` replicas per authority range, numbered
    /// `range * replicas_per_range + r` on the net (the flat numbering
    /// [`crate::fault::FaultEvent::replica`] uses).
    pub fn over_sim(
        authority: ShardedAdvisor,
        net: &crate::sim::SimNet,
        replicas_per_range: usize,
        cfg: ClusterConfig,
    ) -> Self {
        let ranges = authority.num_shards();
        let connectors = (0..ranges)
            .map(|range| {
                (0..replicas_per_range)
                    .map(|r| {
                        Box::new(net.connector(range * replicas_per_range + r))
                            as Box<dyn Connector>
                    })
                    .collect()
            })
            .collect();
        ClusterCoordinator::new(authority, connectors, cfg)
    }

    /// The authority advisor (read-only).
    pub fn authority(&self) -> &ShardedAdvisor {
        &self.authority
    }

    /// Current serving epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The ordered event trace so far (wall-clock free: dials, failures,
    /// reloads, failovers, snapshots — same seed and same fault plan give
    /// the same trace, byte for byte).
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Drains the event trace.
    pub fn take_trace(&mut self) -> Vec<String> {
        std::mem::take(&mut self.trace)
    }

    /// Point-in-time health snapshot.
    pub fn health(&self) -> ClusterHealth {
        ClusterHealth {
            ranges: self
                .replicas
                .iter()
                .map(|range| range.iter().map(|r| r.health.clone()).collect())
                .collect(),
        }
    }

    fn make_table(&self, range: usize) -> EpochTable {
        let shard = &self.authority.shards()[range];
        EpochTable {
            epoch: self.epoch,
            ids: shard.ids().iter().map(|&id| id as u64).collect(),
            embeddings: shard
                .entries()
                .iter()
                .map(|e| e.embedding.clone())
                .collect(),
        }
    }

    /// One transport round trip to `replicas[range][r]`, dialing if
    /// needed. Any failure poisons the connection and is recorded in the
    /// replica's health; NACK frames come back as `Ok` (they are protocol
    /// answers, not transport failures).
    fn raw_call(&mut self, range: usize, r: usize, frame: &Frame) -> Result<Frame, WireError> {
        let deadline = self.cfg.request_deadline;
        let replica = &mut self.replicas[range][r];
        if replica.conn.is_none() {
            match replica.connector.connect() {
                Ok(conn) => replica.conn = Some(conn),
                Err(e) => {
                    replica.health.record_failure();
                    self.trace
                        .push(format!("dial-err range={range} r={r}: {e}"));
                    return Err(e);
                }
            }
        }
        let conn = replica.conn.as_mut().expect("dialed above");
        match conn.call(frame, deadline) {
            Ok(reply) => {
                replica.health.record_success();
                Ok(reply)
            }
            Err(e) => {
                replica.conn = None;
                replica.health.record_failure();
                self.trace
                    .push(format!("call-err range={range} r={r}: {e}"));
                Err(e)
            }
        }
    }

    /// Reloads one replica with the authority's current table for its
    /// range. This is both bootstrap and *the* repair action.
    fn load_replica(&mut self, range: usize, r: usize) -> Result<(), WireError> {
        let table = self.make_table(range);
        let (epoch, version) = (table.epoch, table.version());
        let reply = self.raw_call(range, r, &Load(table).into_frame())?;
        let ack = LoadAck::from_frame(&reply).map_err(|e| WireError::Frame(e.to_string()))?;
        if (ack.epoch, ack.version) != (epoch, version) {
            return Err(WireError::Frame(format!(
                "load ack mismatch: want ({epoch},{version}), got ({},{})",
                ack.epoch, ack.version
            )));
        }
        let replica = &mut self.replicas[range][r];
        replica.health.record_reload();
        self.trace.push(format!(
            "reload range={range} r={r} epoch={epoch} v={version}"
        ));
        Ok(())
    }

    fn backoff(&mut self, attempt: u32) {
        let base = self.cfg.backoff_base;
        if base.is_zero() {
            return;
        }
        let exp = base.saturating_mul(1u32 << attempt.min(10));
        let capped = exp.min(self.cfg.backoff_max);
        // Up to +50% seeded jitter, deterministic per coordinator.
        let jitter = self.rng.gen_range(0..256u64) as f64 / 512.0;
        std::thread::sleep(capped.mul_f64(1.0 + jitter));
    }

    /// Sends `frame` to range `range`: bounded retries with exponential
    /// backoff per replica, NACK-triggered reload, then failover to the
    /// next replica. Returns the first non-NACK answer.
    fn call_range(&mut self, range: usize, frame: &Frame) -> Result<Frame, ClusterError> {
        let replicas = self.replicas[range].len();
        for r in 0..replicas {
            if r > 0 {
                self.trace.push(format!("failover range={range} to r={r}"));
            }
            for attempt in 0..self.cfg.max_attempts_per_replica {
                let reply = match self.raw_call(range, r, frame) {
                    Ok(reply) => reply,
                    Err(_) => {
                        // raw_call already traced and recorded the failure.
                        self.backoff(attempt);
                        continue;
                    }
                };
                if reply.step != Step::ShardSendNack {
                    return Ok(reply);
                }
                match Nack::from_frame(&reply) {
                    Ok(nack) => {
                        self.trace.push(format!(
                            "nack range={range} r={r} {:?}: {}",
                            nack.code, nack.detail
                        ));
                        match nack.code {
                            NackCode::StaleTable | NackCode::NoTable => {
                                // The one repair action; failure counts
                                // toward this replica's attempts.
                                let _ = self.load_replica(range, r);
                            }
                            NackCode::Malformed => {
                                // Our request arrived damaged — drop the
                                // conn and resend over a fresh one.
                                self.replicas[range][r].conn = None;
                            }
                        }
                    }
                    Err(e) => {
                        self.trace
                            .push(format!("bad-nack range={range} r={r}: {e}"));
                        self.replicas[range][r].conn = None;
                    }
                }
                self.backoff(attempt);
            }
        }
        self.trace.push(format!("range-dark range={range}"));
        Err(ClusterError::RangeUnavailable { range })
    }

    /// Loads every replica with its range's table and verifies at least
    /// one live replica per range. Idempotent; also usable as a
    /// whole-cluster resync.
    pub fn bootstrap(&mut self) -> Result<(), ClusterError> {
        for range in 0..self.replicas.len() {
            let mut live = 0usize;
            for r in 0..self.replicas[range].len() {
                if self.load_replica(range, r).is_ok() {
                    live += 1;
                }
            }
            if live == 0 {
                self.trace.push(format!("range-dark range={range}"));
                return Err(ClusterError::RangeUnavailable { range });
            }
        }
        Ok(())
    }

    /// KNN prediction excluding one global RCS index, answered from the
    /// wire. Bit-identical to [`ShardedAdvisor::predict_excluding`] on
    /// the authority (see the module docs).
    pub fn predict_excluding(
        &mut self,
        embedding: &[f32],
        w: MetricWeights,
        exclude: usize,
    ) -> Result<(ModelKind, Vec<f64>), ClusterError> {
        assert!(!self.authority.is_empty(), "empty RCS");
        let len = self.authority.len();
        let candidates = len - usize::from(exclude < len);
        assert!(
            candidates > 0,
            "KNN needs at least one non-excluded RCS entry"
        );
        let k = self.authority.config().k.clamp(1, candidates);
        let wire_exclude = if exclude < len {
            exclude as u64
        } else {
            u64::MAX
        };
        let ranges = self.replicas.len();
        let mut merged: Vec<(usize, f32)> = Vec::with_capacity(k * ranges);
        for range in 0..ranges {
            let shard_len = self.authority.shards()[range].len() as u64;
            if shard_len == 0 {
                // An empty shard's partial top-k is empty; skip the trip.
                continue;
            }
            let query = Query {
                epoch: self.epoch,
                version: shard_len,
                embedding: embedding.to_vec(),
                k: k as u64,
                exclude: wire_exclude,
            };
            let reply = self.call_range(range, &query.into_frame())?;
            let topk =
                TopK::from_frame(&reply).map_err(|e| ClusterError::Protocol(e.to_string()))?;
            merged.extend(topk.entries.iter().map(|&(id, d)| (id as usize, d)));
        }
        merged.sort_unstable_by(knn_order);
        merged.truncate(k);
        Ok(knn_vote(
            merged.iter().map(|&(id, _)| self.authority.entry(id)),
            k,
            w,
        ))
    }

    /// KNN prediction from an embedding (no exclusion).
    pub fn predict_from_embedding(
        &mut self,
        embedding: &[f32],
        w: MetricWeights,
    ) -> Result<(ModelKind, Vec<f64>), ClusterError> {
        self.predict_excluding(embedding, w, usize::MAX)
    }

    /// Full recommendation from a feature graph: embed on the authority
    /// encoder, KNN over the wire.
    pub fn recommend_graph(
        &mut self,
        g: &FeatureGraph,
        w: MetricWeights,
    ) -> Result<ModelKind, ClusterError> {
        let x = self.authority.embed_graph(g);
        Ok(self.predict_from_embedding(&x, w)?.0)
    }

    /// Adds a freshly labeled dataset: authority first, then a
    /// version-guarded [`Push`] to every replica of the receiving range.
    /// Replicas that miss the push (down, NACK, lost ack) are resynced by
    /// reload — immediately when possible, otherwise lazily by the next
    /// query's NACK. Returns the new global RCS index.
    pub fn push_entry(
        &mut self,
        graph: FeatureGraph,
        label: &DatasetLabel,
    ) -> Result<usize, ClusterError> {
        let global = self.authority.push_entry(graph, label);
        let range = self
            .authority
            .shards()
            .iter()
            .position(|s| s.ids().last() == Some(&global))
            .expect("pushed entry must land in some shard");
        let version_before = (self.authority.shards()[range].len() - 1) as u64;
        let push = Push {
            epoch: self.epoch,
            version: version_before,
            id: global as u64,
            embedding: self.authority.entry(global).embedding.clone(),
        };
        let frame = push.into_frame();
        for r in 0..self.replicas[range].len() {
            let synced = match self.raw_call(range, r, &frame) {
                Ok(reply) => matches!(
                    PushAck::from_frame(&reply),
                    Ok(ack) if ack.epoch == self.epoch && ack.version == version_before + 1
                ),
                Err(_) => false,
            };
            if synced {
                self.trace.push(format!(
                    "push range={range} r={r} id={global} v={}",
                    version_before + 1
                ));
            } else {
                // A push retry is not idempotent (the shard may have
                // applied it before losing the ack); reload is.
                let _ = self.load_replica(range, r);
            }
        }
        Ok(global)
    }

    /// Refreshes every authority embedding and stages the result as a new
    /// epoch on all replicas ([`SnapshotEpoch`]): shards keep the previous
    /// epoch serving while the swap propagates, and the coordinator pins
    /// queries to the new epoch only once every range has at least one
    /// replica confirmed on it. Returns the new epoch.
    pub fn refresh_and_snapshot(&mut self) -> Result<u64, ClusterError> {
        self.authority.refresh_embeddings();
        self.epoch += 1;
        self.trace.push(format!("snapshot-epoch {}", self.epoch));
        for range in 0..self.replicas.len() {
            let table = self.make_table(range);
            let (epoch, version) = (table.epoch, table.version());
            let frame = SnapshotEpoch(table).into_frame();
            let mut staged = 0usize;
            for r in 0..self.replicas[range].len() {
                let ok = match self.raw_call(range, r, &frame) {
                    Ok(reply) => matches!(
                        EpochAck::from_frame(&reply),
                        Ok(ack) if (ack.epoch, ack.version) == (epoch, version)
                    ),
                    Err(_) => false,
                };
                if ok {
                    staged += 1;
                    self.trace
                        .push(format!("epoch-ack range={range} r={r} epoch={epoch}"));
                } else if self.load_replica(range, r).is_ok() {
                    // Reload carries the new epoch's table, so it counts.
                    staged += 1;
                }
            }
            if staged == 0 {
                self.trace.push(format!("range-dark range={range}"));
                return Err(ClusterError::RangeUnavailable { range });
            }
        }
        Ok(self.epoch)
    }

    /// Pings every replica once, recording health and proactively
    /// reloading any replica that answers with a stale or missing table.
    /// Returns the post-probe health snapshot — callers should surface
    /// [`ClusterHealth::report`] when it is degraded.
    pub fn heartbeat(&mut self) -> ClusterHealth {
        for range in 0..self.replicas.len() {
            let want_version = self.authority.shards()[range].len() as u64;
            for r in 0..self.replicas[range].len() {
                self.ping_nonce += 1;
                let nonce = self.ping_nonce;
                // raw_call failures already record health + trace; only a
                // successful reply needs inspecting here.
                if let Ok(reply) = self.raw_call(range, r, &Ping { nonce }.into_frame()) {
                    match Pong::from_frame(&reply) {
                        Ok(pong)
                            if pong.nonce == nonce
                                && pong.epoch == self.epoch
                                && pong.version == want_version => {}
                        Ok(_) => {
                            self.trace.push(format!("stale-pong range={range} r={r}"));
                            let _ = self.load_replica(range, r);
                        }
                        Err(e) => {
                            self.trace
                                .push(format!("bad-pong range={range} r={r}: {e}"));
                            self.replicas[range][r].conn = None;
                        }
                    }
                }
            }
        }
        self.health()
    }

    /// Sends a clean shutdown to every replica (best effort).
    pub fn shutdown_cluster(&mut self) {
        let frame = crate::protocol::Shutdown.into_frame();
        for range in 0..self.replicas.len() {
            for r in 0..self.replicas[range].len() {
                let _ = self.raw_call(range, r, &frame);
                self.replicas[range][r].conn = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::sim::SimNet;
    use autoce::{AutoCe, AutoCeConfig, RcsEntry};
    use ce_gnn::{DmlConfig, GinEncoder};

    fn synthetic_flat(n: usize, k: usize) -> AutoCe {
        let entries: Vec<RcsEntry> = (0..n)
            .map(|i| {
                let v = i as f32 * 0.25;
                RcsEntry {
                    name: format!("e{i}"),
                    graph: FeatureGraph {
                        vertices: vec![vec![v, 1.0 - v, 0.5, 0.25]],
                        edges: vec![vec![0.0]],
                    },
                    embedding: vec![v, v * v, 1.0 - v],
                    kinds: vec![ModelKind::Postgres, ModelKind::LwXgb, ModelKind::LwNn],
                    sa: vec![(i % 3) as f64 / 2.0, ((i + 1) % 3) as f64 / 2.0, 0.5],
                    se: vec![0.5, (i % 2) as f64, 1.0 - (i % 2) as f64],
                }
            })
            .collect();
        let config = AutoCeConfig {
            k,
            incremental: None,
            dml: DmlConfig {
                hidden: vec![8],
                embed_dim: 3,
                ..DmlConfig::default()
            },
            ..AutoCeConfig::default()
        };
        AutoCe::from_parts(config, GinEncoder::new(4, &[8], 3, 7), entries)
    }

    fn queries() -> Vec<Vec<f32>> {
        vec![
            vec![0.0f32, 0.0, 0.0],
            vec![1.3, 0.4, -0.2],
            vec![2.5, 6.25, -1.5],
        ]
    }

    #[test]
    fn healthy_cluster_matches_in_process_sharded_advisor() {
        let flat = synthetic_flat(11, 3);
        let w = MetricWeights::new(0.7);
        for ranges in [1usize, 3] {
            let sharded = ShardedAdvisor::from_advisor(&flat, ranges);
            let net = SimNet::new(ranges * 2, FaultPlan::none());
            let mut coord =
                ClusterCoordinator::over_sim(sharded.clone(), &net, 2, ClusterConfig::no_sleep());
            coord.bootstrap().expect("bootstrap");
            for x in queries() {
                for exclude in [usize::MAX, 0, 10] {
                    let want = sharded.predict_excluding(&x, w, exclude);
                    let got = coord.predict_excluding(&x, w, exclude).expect("predict");
                    assert_eq!(want, got, "ranges={ranges} exclude={exclude}");
                }
            }
            assert!(!coord.health().degraded(), "no failures on a healthy net");
        }
    }

    #[test]
    fn failover_is_bit_identical_and_reported() {
        let flat = synthetic_flat(9, 3);
        let w = MetricWeights::new(0.5);
        let sharded = ShardedAdvisor::from_advisor(&flat, 2);
        // Replica 0 of range 0 dies right after bootstrap (4 replicas ×
        // (dial + load) = 8 steps) and never comes back.
        let plan = FaultPlan::none().with_kill(9, 0);
        let net = SimNet::new(4, plan);
        let mut coord =
            ClusterCoordinator::over_sim(sharded.clone(), &net, 2, ClusterConfig::no_sleep());
        coord.bootstrap().expect("bootstrap");
        for x in queries() {
            let want = sharded.predict_from_embedding(&x, w);
            let got = coord.predict_from_embedding(&x, w).expect("predict");
            assert_eq!(want, got, "failover must not change a bit");
        }
        let health = coord.health();
        assert!(health.degraded(), "the dead replica must be reported");
        assert!(!health.any_range_dark(), "its sibling still serves");
        assert!(
            coord.trace().iter().any(|l| l.starts_with("failover")),
            "trace records the failover: {:?}",
            coord.trace()
        );
    }

    #[test]
    fn all_replicas_down_is_an_explicit_error() {
        let flat = synthetic_flat(5, 2);
        let sharded = ShardedAdvisor::from_advisor(&flat, 1);
        // Both replicas die after bootstrap (2 × (dial + load) = 4 steps).
        let plan = FaultPlan::none().with_kill(5, 0).with_kill(5, 1);
        let net = SimNet::new(2, plan);
        let mut coord = ClusterCoordinator::over_sim(sharded, &net, 2, ClusterConfig::no_sleep());
        coord.bootstrap().expect("bootstrap");
        let got = coord.predict_from_embedding(&[0.0, 0.0, 0.0], MetricWeights::new(0.5));
        assert_eq!(got, Err(ClusterError::RangeUnavailable { range: 0 }));
        assert!(coord.health().any_range_dark());
        assert!(coord.health().report().contains("DARK"));
    }

    #[test]
    fn push_and_snapshot_keep_replicas_in_lockstep() {
        let flat = synthetic_flat(6, 2);
        let sharded = ShardedAdvisor::from_advisor(&flat, 2);
        let mut mirror = sharded.clone();
        let net = SimNet::new(4, FaultPlan::none());
        let mut coord = ClusterCoordinator::over_sim(sharded, &net, 2, ClusterConfig::no_sleep());
        coord.bootstrap().expect("bootstrap");
        let label = DatasetLabel {
            dataset: "new".into(),
            performances: mirror.shards()[0].entries()[0]
                .kinds
                .iter()
                .enumerate()
                .map(|(i, &kind)| ce_testbed::ModelPerformance {
                    kind,
                    qerror_mean: 1.0 + i as f64,
                    qerror_p50: 1.0,
                    qerror_p95: 1.0,
                    qerror_p99: 1.0,
                    latency_mean_us: 10.0 * (i + 1) as f64,
                    train_time_ms: 1.0,
                })
                .collect(),
        };
        let graph = FeatureGraph {
            vertices: vec![vec![0.3, 0.3, 0.3, 0.3]],
            edges: vec![vec![0.0]],
        };
        let id = coord.push_entry(graph.clone(), &label).expect("push");
        assert_eq!(id, mirror.push_entry(graph, &label));
        let w = MetricWeights::new(0.7);
        for x in queries() {
            assert_eq!(
                mirror.predict_from_embedding(&x, w),
                coord.predict_from_embedding(&x, w).expect("predict"),
                "post-push answers must match the in-process mirror"
            );
        }
        // Epoch swap: refresh embeddings on both, then compare again.
        mirror.refresh_embeddings();
        let epoch = coord.refresh_and_snapshot().expect("snapshot");
        assert_eq!(epoch, 1);
        for x in queries() {
            assert_eq!(
                mirror.predict_from_embedding(&x, w),
                coord.predict_from_embedding(&x, w).expect("predict"),
                "post-snapshot answers must match"
            );
        }
        assert!(!coord.heartbeat().degraded());
    }
}
