//! # ce-cluster — cross-process sharded advisor serving
//!
//! Takes `ce-serve`'s in-process [`ShardedAdvisor`] across process
//! boundaries: a [`ClusterCoordinator`] owns the authority advisor and
//! fans partial top-k queries out to replicated shard-server processes
//! over loopback TCP, merging answers **bit-identically** to the flat
//! advisor — with any number of replicas down short of a whole range.
//!
//! * [`protocol`]: the explicit versioned wire protocol (PtoDesc-style
//!   numbered step enum, epoch-tagged tables, structured NACKs) over the
//!   compact binary codec in `serde::bin`.
//! * [`transport`]: the `Conn`/`Connector` round-trip abstraction with
//!   per-request deadlines; TCP for production, [`sim`] for tests.
//! * [`server`]: the shard-server state machine and TCP serving loop —
//!   two live epochs, version-pinned queries, NACK-don't-crash.
//! * [`coordinator`]: authority-first mutation, bounded retry with seeded
//!   exponential backoff, NACK-triggered reload, replica failover, epoch
//!   snapshot swaps.
//! * [`health`]: per-replica health records and the explicit
//!   degraded-mode report.
//! * [`fault`] + [`sim`]: deterministic fault-injection plans and the
//!   in-process network that executes them — same seed, same workload →
//!   same failure sequence → same coordinator event trace.
//!
//! See `docs/cluster-protocol.md` for the wire contract and the failover
//! state machine.

pub mod coordinator;
pub mod fault;
pub mod health;
pub mod protocol;
pub mod server;
pub mod sim;
pub mod transport;

pub use coordinator::{ClusterConfig, ClusterConfigBuilder, ClusterCoordinator, ClusterError};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use health::{ClusterHealth, ReplicaHealth, ReplicaStatus};
pub use protocol::{
    BatchQuery, EpochTable, Frame, Message, MetricsReply, MetricsRequest, NackCode, QueryBatch,
    Step, TopKBatch, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, PTO_ID, PTO_NAME,
};
// Observability surface: the registry/snapshot types cluster callers need
// to configure `ClusterConfig::metrics` and read aggregations.
pub use ce_obs::{MetricsRegistry, MetricsSnapshot};
pub use server::{
    maybe_run_shard_server_from_args, shard_server_main, spawn_shard_process, ShardState,
    READY_LINE_PREFIX,
};
pub use sim::SimNet;
pub use transport::{Conn, Connector, TcpConnector, WireError};

// Re-exported so cluster users need not depend on ce-serve directly for
// the common path.
pub use ce_serve::ShardedAdvisor;
