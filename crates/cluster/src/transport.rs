//! Framed request/response transport between coordinator and shard
//! servers.
//!
//! The protocol is strictly client-driven (the coordinator sends, the
//! shard answers), so the transport surface is a two-phase pair:
//! [`Conn::send`] writes a request frame, [`Conn::recv`] waits for its
//! answer under a deadline — with [`Conn::call`] as the composed
//! round trip. The split is what makes the coordinator's **pipelined
//! range fan-out** possible: it issues the query to every range's
//! connection first (all `send`s), then collects the answers in fixed
//! range order (all `recv`s), so the per-range round trips overlap on
//! the wire instead of being paid as a sum. Two implementations exist:
//!
//! * [`TcpConnector`]/`TcpConn` over `std::net::TcpStream` (loopback or
//!   real network) — the production shape;
//! * the in-process simulated transport in [`crate::sim`], which shares
//!   the exact frame codec but routes through a deterministic
//!   fault-injection layer.
//!
//! Any transport error poisons the connection: the coordinator drops the
//! `Conn` and re-dials rather than attempting to resynchronize a torn
//! byte stream. A `send` with an unconsumed reply still in flight is a
//! caller bug and answers [`WireError::Frame`].

use crate::protocol::{Frame, FrameError, NackCode, HEADER_LEN};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Transport/protocol failure as seen by the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The deadline elapsed before a full answer arrived.
    Timeout,
    /// The peer is gone (connection refused, reset, or closed mid-frame).
    Closed(String),
    /// The peer answered bytes that do not parse as a protocol frame.
    Frame(String),
    /// The peer sent a structured NACK (recoverable; the coordinator
    /// reloads or retries).
    Nack {
        /// Machine-readable reason.
        code: NackCode,
        /// Diagnostic detail.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Timeout => f.write_str("deadline elapsed"),
            WireError::Closed(d) => write!(f, "connection closed: {d}"),
            WireError::Frame(d) => write!(f, "bad frame: {d}"),
            WireError::Nack { code, detail } => write!(f, "nack {code:?}: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e.to_string())
    }
}

/// One established connection to a shard server.
///
/// The protocol admits exactly one outstanding request per connection:
/// after a successful [`Self::send`] the caller must [`Self::recv`] (or
/// drop the connection) before sending again.
pub trait Conn: Send {
    /// Writes `frame` without waiting for the answer. `deadline` bounds
    /// the write itself (a full socket buffer blocking this long means
    /// the peer is effectively gone).
    fn send(&mut self, frame: &Frame, deadline: Duration) -> Result<(), WireError>;

    /// Waits for the answer to the last [`Self::send`], failing if the
    /// full frame does not arrive within `deadline`.
    fn recv(&mut self, deadline: Duration) -> Result<Frame, WireError>;

    /// Sends `frame` and waits for the single answer frame, failing if the
    /// full round trip exceeds `deadline`. Any error leaves the connection
    /// unusable (the caller must re-dial).
    fn call(&mut self, frame: &Frame, deadline: Duration) -> Result<Frame, WireError> {
        self.send(frame, deadline)?;
        self.recv(deadline)
    }
}

/// A dialer producing fresh connections to one shard server.
pub trait Connector: Send {
    /// Establishes a new connection.
    fn connect(&mut self) -> Result<Box<dyn Conn>, WireError>;

    /// Stable human-readable endpoint label (used in health reports and
    /// event traces).
    fn label(&self) -> String;
}

/// TCP connection wrapper: length-framed blocking I/O with per-call
/// deadlines mapped onto socket timeouts.
///
/// Two syscall economies matter at advisor frame sizes (a query round
/// trip is ~100 bytes against a ~5µs loopback RTT floor):
///
/// * **Buffered reads** — the answer's header and payload almost always
///   arrive in one segment, so [`Conn::recv`] reads into an internal
///   buffer and parses frames out of it: one `read` per answer instead
///   of one per header plus one per payload.
/// * **Cached timeouts** — `setsockopt` costs as much as a small `read`;
///   since callers pass the same configured deadline on every call, the
///   socket timeouts are set once and only re-set when the requested
///   deadline changes. The elapsed-time check still uses the true
///   per-call deadline; a single blocking read can overrun it by at most
///   one deadline's worth before the check fails the call.
pub struct TcpConn {
    stream: TcpStream,
    /// Read buffer; `start..` is the unconsumed tail.
    buf: Vec<u8>,
    start: usize,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
}

impl TcpConn {
    /// Wraps an accepted or dialed stream.
    pub fn new(stream: TcpStream) -> Self {
        TcpConn {
            stream,
            buf: Vec::new(),
            start: 0,
            read_timeout: None,
            write_timeout: None,
        }
    }

    fn available(&self) -> usize {
        self.buf.len() - self.start
    }

    /// One `read` syscall appending to the buffer, honoring `end`.
    fn fill(&mut self, end: Instant, deadline: Duration) -> Result<(), WireError> {
        if self.read_timeout != Some(deadline) {
            self.stream
                .set_read_timeout(Some(deadline))
                .map_err(|e| WireError::Closed(e.to_string()))?;
            self.read_timeout = Some(deadline);
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if Instant::now() >= end {
                return Err(WireError::Timeout);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(WireError::Closed("peer closed mid-frame".into())),
                Ok(n) => {
                    // Compact lazily: only when the consumed prefix is the
                    // whole buffer (the common case between frames).
                    if self.start == self.buf.len() {
                        self.buf.clear();
                        self.start = 0;
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(WireError::Timeout)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::Closed(e.to_string())),
            }
        }
    }
}

impl Conn for TcpConn {
    fn send(&mut self, frame: &Frame, deadline: Duration) -> Result<(), WireError> {
        if self.write_timeout != Some(deadline) {
            self.stream
                .set_write_timeout(Some(deadline))
                .map_err(|e| WireError::Closed(e.to_string()))?;
            self.write_timeout = Some(deadline);
        }
        self.stream
            .write_all(&frame.to_bytes())
            .map_err(|e| WireError::Closed(e.to_string()))
    }

    fn recv(&mut self, deadline: Duration) -> Result<Frame, WireError> {
        let end = Instant::now() + deadline;
        while self.available() < HEADER_LEN {
            self.fill(end, deadline)?;
        }
        let header: &[u8; HEADER_LEN] = self.buf[self.start..self.start + HEADER_LEN]
            .try_into()
            .expect("exact header slice");
        let (version, step, len) = Frame::parse_header(header)?;
        while self.available() < HEADER_LEN + len {
            self.fill(end, deadline)?;
        }
        let at = self.start + HEADER_LEN;
        let payload = self.buf[at..at + len].to_vec();
        self.start = at + len;
        Ok(Frame {
            version,
            step,
            payload,
        })
    }
}

/// Dialer for one shard-server address.
pub struct TcpConnector {
    addr: SocketAddr,
    connect_timeout: Duration,
}

impl TcpConnector {
    /// A connector dialing `addr` with the given connect timeout.
    pub fn new(addr: SocketAddr, connect_timeout: Duration) -> Self {
        TcpConnector {
            addr,
            connect_timeout,
        }
    }
}

impl Connector for TcpConnector {
    fn connect(&mut self) -> Result<Box<dyn Conn>, WireError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)
            .map_err(|e| WireError::Closed(format!("dial {}: {e}", self.addr)))?;
        // The advisor exchanges small latency-sensitive frames.
        let _ = stream.set_nodelay(true);
        Ok(Box::new(TcpConn::new(stream)))
    }

    fn label(&self) -> String {
        self.addr.to_string()
    }
}
