//! Framed request/response transport between coordinator and shard
//! servers.
//!
//! The protocol is strictly client-driven (the coordinator sends, the
//! shard answers), so the transport surface is one call:
//! [`Conn::call`] — send a frame, wait for the answer under a deadline.
//! Two implementations exist:
//!
//! * [`TcpConnector`]/`TcpConn` over `std::net::TcpStream` (loopback or
//!   real network) — the production shape;
//! * the in-process simulated transport in [`crate::sim`], which shares
//!   the exact frame codec but routes through a deterministic
//!   fault-injection layer.
//!
//! Any transport error poisons the connection: the coordinator drops the
//! `Conn` and re-dials rather than attempting to resynchronize a torn
//! byte stream.

use crate::protocol::{Frame, FrameError, NackCode, HEADER_LEN};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Transport/protocol failure as seen by the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The deadline elapsed before a full answer arrived.
    Timeout,
    /// The peer is gone (connection refused, reset, or closed mid-frame).
    Closed(String),
    /// The peer answered bytes that do not parse as a protocol frame.
    Frame(String),
    /// The peer sent a structured NACK (recoverable; the coordinator
    /// reloads or retries).
    Nack {
        /// Machine-readable reason.
        code: NackCode,
        /// Diagnostic detail.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Timeout => f.write_str("deadline elapsed"),
            WireError::Closed(d) => write!(f, "connection closed: {d}"),
            WireError::Frame(d) => write!(f, "bad frame: {d}"),
            WireError::Nack { code, detail } => write!(f, "nack {code:?}: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e.to_string())
    }
}

/// One established connection to a shard server.
pub trait Conn: Send {
    /// Sends `frame` and waits for the single answer frame, failing if the
    /// full round trip exceeds `deadline`. Any error leaves the connection
    /// unusable (the caller must re-dial).
    fn call(&mut self, frame: &Frame, deadline: Duration) -> Result<Frame, WireError>;
}

/// A dialer producing fresh connections to one shard server.
pub trait Connector: Send {
    /// Establishes a new connection.
    fn connect(&mut self) -> Result<Box<dyn Conn>, WireError>;

    /// Stable human-readable endpoint label (used in health reports and
    /// event traces).
    fn label(&self) -> String;
}

/// TCP connection wrapper: length-framed blocking I/O with per-call
/// deadlines mapped onto socket timeouts.
pub struct TcpConn {
    stream: TcpStream,
}

impl TcpConn {
    /// Wraps an accepted or dialed stream.
    pub fn new(stream: TcpStream) -> Self {
        TcpConn { stream }
    }

    fn read_exact_deadline(&mut self, buf: &mut [u8], deadline: Instant) -> Result<(), WireError> {
        let mut read = 0usize;
        while read < buf.len() {
            let now = Instant::now();
            if now >= deadline {
                return Err(WireError::Timeout);
            }
            self.stream
                .set_read_timeout(Some(deadline - now))
                .map_err(|e| WireError::Closed(e.to_string()))?;
            match self.stream.read(&mut buf[read..]) {
                Ok(0) => return Err(WireError::Closed("peer closed mid-frame".into())),
                Ok(n) => read += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(WireError::Timeout)
                }
                Err(e) => return Err(WireError::Closed(e.to_string())),
            }
        }
        Ok(())
    }
}

impl Conn for TcpConn {
    fn call(&mut self, frame: &Frame, deadline: Duration) -> Result<Frame, WireError> {
        let end = Instant::now() + deadline;
        self.stream
            .set_write_timeout(Some(deadline))
            .map_err(|e| WireError::Closed(e.to_string()))?;
        self.stream
            .write_all(&frame.to_bytes())
            .map_err(|e| WireError::Closed(e.to_string()))?;
        let mut header = [0u8; HEADER_LEN];
        self.read_exact_deadline(&mut header, end)?;
        let (step, len) = Frame::parse_header(&header)?;
        let mut payload = vec![0u8; len];
        self.read_exact_deadline(&mut payload, end)?;
        Ok(Frame { step, payload })
    }
}

/// Dialer for one shard-server address.
pub struct TcpConnector {
    addr: SocketAddr,
    connect_timeout: Duration,
}

impl TcpConnector {
    /// A connector dialing `addr` with the given connect timeout.
    pub fn new(addr: SocketAddr, connect_timeout: Duration) -> Self {
        TcpConnector {
            addr,
            connect_timeout,
        }
    }
}

impl Connector for TcpConnector {
    fn connect(&mut self) -> Result<Box<dyn Conn>, WireError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)
            .map_err(|e| WireError::Closed(format!("dial {}: {e}", self.addr)))?;
        // The advisor exchanges small latency-sensitive frames.
        let _ = stream.set_nodelay(true);
        Ok(Box::new(TcpConn::new(stream)))
    }

    fn label(&self) -> String {
        self.addr.to_string()
    }
}
