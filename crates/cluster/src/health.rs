//! Replica health tracking and degraded-mode reporting.
//!
//! The coordinator's robustness guarantee is *bit-identity under partial
//! failure*, which makes it easy to hide trouble: answers stay perfect
//! while replicas burn. This module is the anti-hiding layer — every
//! dial, failure, reload and failover updates a [`ReplicaHealth`] record,
//! and [`ClusterHealth::report`] renders an explicit degraded-mode
//! summary that callers are expected to surface (the bench harness logs
//! it; the example prints it).

/// Coarse replica condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaStatus {
    /// Last contact succeeded with no recent failures.
    Healthy,
    /// Serving, but the coordinator has recently had to retry, reload, or
    /// re-dial it.
    Degraded,
    /// The last contact attempt(s) failed; the coordinator is failing
    /// over around it.
    Dead,
}

/// Running health record for one replica endpoint.
#[derive(Debug, Clone)]
pub struct ReplicaHealth {
    /// Endpoint label (connector-provided; stable across reconnects).
    pub label: String,
    /// Failures since the last success.
    pub consecutive_failures: u64,
    /// Lifetime failed calls/dials.
    pub total_failures: u64,
    /// Lifetime table reloads (NACK-triggered resyncs + post-restart
    /// recoveries).
    pub reloads: u64,
    /// Lifetime successful calls.
    pub successes: u64,
    /// True while the coordinator has taken this replica out of regular
    /// traffic (its dead-streak reached `ClusterConfig::demote_after`).
    /// Demoted replicas stop costing refused dials on every request; only
    /// a heartbeat or an explicit resync touches them, and any successful
    /// round trip re-promotes. The *last-hope* exception: when every
    /// replica of a range is demoted, the query path considers all of
    /// them rather than failing without trying.
    pub demoted: bool,
}

impl ReplicaHealth {
    /// A fresh, untouched record.
    pub fn new(label: String) -> Self {
        ReplicaHealth {
            label,
            consecutive_failures: 0,
            total_failures: 0,
            reloads: 0,
            successes: 0,
            demoted: false,
        }
    }

    /// Records a successful round trip.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.successes += 1;
    }

    /// Records a failed dial or call.
    pub fn record_failure(&mut self) {
        self.consecutive_failures += 1;
        self.total_failures += 1;
    }

    /// Records a table reload pushed to this replica.
    pub fn record_reload(&mut self) {
        self.reloads += 1;
    }

    /// Current status under the standard thresholds: demotion or any
    /// consecutive failure streak ≥ 2 is dead, any lifetime failure or
    /// reload leaves the replica degraded until it proves itself again.
    pub fn status(&self) -> ReplicaStatus {
        if self.demoted || self.consecutive_failures >= 2 {
            ReplicaStatus::Dead
        } else if self.consecutive_failures > 0
            || (self.total_failures + self.reloads > 0 && self.successes < self.total_failures)
        {
            ReplicaStatus::Degraded
        } else {
            ReplicaStatus::Healthy
        }
    }
}

/// Point-in-time health of the whole cluster, grouped by range.
#[derive(Debug, Clone)]
pub struct ClusterHealth {
    /// `ranges[range][replica]` mirrors the coordinator's replica layout.
    pub ranges: Vec<Vec<ReplicaHealth>>,
}

impl ClusterHealth {
    /// True when any replica is not fully healthy.
    pub fn degraded(&self) -> bool {
        self.ranges
            .iter()
            .flatten()
            .any(|r| r.status() != ReplicaStatus::Healthy)
    }

    /// True when some range has no live replica at all (requests to it
    /// will fail until a replica recovers).
    pub fn any_range_dark(&self) -> bool {
        self.ranges
            .iter()
            .any(|range| range.iter().all(|r| r.status() == ReplicaStatus::Dead))
    }

    /// Renders the explicit degraded-mode report. One line per replica;
    /// the header states the overall mode so a log grep for `DEGRADED`
    /// or `DARK` finds trouble immediately.
    pub fn report(&self) -> String {
        let mode = if self.any_range_dark() {
            "DARK (some range has no live replica)"
        } else if self.degraded() {
            "DEGRADED (serving; failures observed)"
        } else {
            "HEALTHY"
        };
        let mut out = format!("cluster mode: {mode}\n");
        for (i, range) in self.ranges.iter().enumerate() {
            for (j, r) in range.iter().enumerate() {
                out.push_str(&format!(
                    "  range {i} replica {j} [{}]: {:?}{} ok={} fail={} streak={} reloads={}\n",
                    r.label,
                    r.status(),
                    if r.demoted { " (demoted)" } else { "" },
                    r.successes,
                    r.total_failures,
                    r.consecutive_failures,
                    r.reloads
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_thresholds() {
        let mut r = ReplicaHealth::new("x".into());
        assert_eq!(r.status(), ReplicaStatus::Healthy);
        r.record_failure();
        assert_eq!(r.status(), ReplicaStatus::Degraded);
        r.record_failure();
        assert_eq!(r.status(), ReplicaStatus::Dead);
        r.record_success();
        assert_ne!(r.status(), ReplicaStatus::Dead, "success clears the streak");
    }

    #[test]
    fn report_names_the_mode() {
        let mut h = ClusterHealth {
            ranges: vec![vec![ReplicaHealth::new("a".into())]],
        };
        assert!(h.report().contains("HEALTHY"));
        h.ranges[0][0].record_failure();
        h.ranges[0][0].record_failure();
        assert!(h.any_range_dark());
        assert!(h.report().contains("DARK"));
        h.ranges[0].push(ReplicaHealth::new("b".into()));
        assert!(!h.any_range_dark());
        assert!(h.degraded());
        assert!(h.report().contains("DEGRADED"));
    }
}
