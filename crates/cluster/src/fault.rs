//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a *schedule*, not a probability: every fault names
//! the logical step at which it fires and the replica it targets. The
//! simulated transport ([`crate::sim`]) counts coordinator calls on a
//! global step counter and consults the plan at every call, so the same
//! plan against the same workload produces the same event trace byte for
//! byte. Seeded construction ([`FaultPlan::seeded`]) turns one `u64` into
//! such a schedule through the deterministic `rand` shim, which is what
//! the gauntlet tests use to sweep many distinct fault mixes cheaply.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The connection breaks before the request reaches the shard: the
    /// caller sees `Closed` and must re-dial.
    DropConn,
    /// The shard processes the request but the reply never arrives: the
    /// caller sees `Timeout`. Exercises idempotence — the shard's state
    /// may have advanced even though the coordinator saw a failure.
    DelayReply,
    /// The reply frame arrives cut short: the caller sees a decode error.
    TruncateReply,
    /// One byte of the reply is flipped: header or payload corruption.
    GarbleReply,
    /// The shard process dies: all state is lost and every subsequent
    /// call fails until a matching [`FaultKind::RestartShard`] fires.
    KillShard,
    /// The shard process comes back up — alive but *empty*, forcing the
    /// coordinator down the reload path.
    RestartShard,
}

impl FaultKind {
    /// Lifecycle faults change shard liveness at a step boundary; wire
    /// faults corrupt exactly one request to the target replica.
    pub fn is_lifecycle(self) -> bool {
        matches!(self, FaultKind::KillShard | FaultKind::RestartShard)
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Global step (coordinator call count) at which the fault arms.
    /// Lifecycle faults apply as soon as the counter reaches this step;
    /// wire faults hit the first call to `replica` at or after it. A
    /// batched query frame (protocol v2) counts as **one** call like any
    /// other: a wire fault landing on it drops, delays, truncates, or
    /// garbles the whole batch — never a subset of the queries inside it.
    pub step: u64,
    /// Target replica index (coordinator's flat replica numbering).
    pub replica: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a perfectly healthy cluster.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from an explicit event list.
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.step, e.replica));
        FaultPlan { events }
    }

    /// Derives a schedule from a seed: about `intensity` faults per step
    /// over `steps` logical steps against `replicas` replicas, with every
    /// kill paired with a later restart so the cluster always heals.
    pub fn seeded(seed: u64, steps: u64, replicas: usize, intensity: f64) -> Self {
        assert!(replicas > 0, "a plan needs at least one replica to target");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_c0de_u64);
        let mut events = Vec::new();
        let total = ((steps as f64) * intensity).ceil() as u64;
        const WIRE: [FaultKind; 4] = [
            FaultKind::DropConn,
            FaultKind::DelayReply,
            FaultKind::TruncateReply,
            FaultKind::GarbleReply,
        ];
        for _ in 0..total {
            let step = rng.gen_range(1..steps.max(2));
            let replica = rng.gen_range(0..replicas);
            if rng.gen_bool(0.2) {
                // Kill, then guarantee a restart a few steps later.
                events.push(FaultEvent {
                    step,
                    replica,
                    kind: FaultKind::KillShard,
                });
                let back = step + 1 + rng.gen_range(0..4u64);
                events.push(FaultEvent {
                    step: back,
                    replica,
                    kind: FaultKind::RestartShard,
                });
            } else {
                let kind = WIRE[rng.gen_range(0..WIRE.len())];
                events.push(FaultEvent {
                    step,
                    replica,
                    kind,
                });
            }
        }
        FaultPlan::scripted(events)
    }

    /// Adds one event.
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self.events.sort_by_key(|e| (e.step, e.replica));
        self
    }

    /// Convenience: kill `replica` at `step` (no automatic restart).
    pub fn with_kill(self, step: u64, replica: usize) -> Self {
        self.with(FaultEvent {
            step,
            replica,
            kind: FaultKind::KillShard,
        })
    }

    /// Convenience: restart `replica` at `step`.
    pub fn with_restart(self, step: u64, replica: usize) -> Self {
        self.with(FaultEvent {
            step,
            replica,
            kind: FaultKind::RestartShard,
        })
    }

    /// Merges two plans into one schedule.
    pub fn merge(self, other: FaultPlan) -> Self {
        let mut events = self.events;
        events.extend(other.events);
        FaultPlan::scripted(events)
    }

    /// All scheduled events, ordered by step.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Lifecycle events that arm at or before `step` (consumed in order
    /// by the sim's liveness bookkeeping).
    pub fn lifecycle_through(&self, step: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind.is_lifecycle() && e.step <= step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_heal() {
        let a = FaultPlan::seeded(42, 100, 4, 0.3);
        let b = FaultPlan::seeded(42, 100, 4, 0.3);
        assert_eq!(a.events(), b.events(), "same seed, same schedule");
        let c = FaultPlan::seeded(43, 100, 4, 0.3);
        assert_ne!(a.events(), c.events(), "different seed, different schedule");
        let kills = a
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::KillShard)
            .count();
        let restarts = a
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::RestartShard)
            .count();
        assert_eq!(kills, restarts, "every seeded kill pairs with a restart");
        assert!(!a.events().is_empty());
    }

    #[test]
    fn scripted_plans_sort_by_step() {
        let plan = FaultPlan::none()
            .with_kill(9, 1)
            .with_restart(3, 0)
            .with(FaultEvent {
                step: 5,
                replica: 2,
                kind: FaultKind::GarbleReply,
            });
        let steps: Vec<u64> = plan.events().iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![3, 5, 9]);
        assert_eq!(plan.lifecycle_through(5).count(), 1);
        assert_eq!(plan.lifecycle_through(9).count(), 2);
    }
}
