//! PostgreSQL-style baseline estimator.
//!
//! Per-column equi-depth histograms with the attribute-value-independence
//! assumption, and the System-R join formula
//! `|A ⋈ B| = |A|·|B| / max(ndv_A(k), ndv_B(k))` — the default estimator the
//! paper compares against (Fig. 9 "Postgres" and Table V "PostgreSQL").

use crate::traits::{CardEstimator, ModelKind, TrainContext};
use ce_storage::stats::EquiDepthHistogram;
use ce_storage::{Dataset, Query};
use std::collections::HashMap;

/// Histogram bucket budget per column (PostgreSQL's default statistics
/// target is 100).
const BUCKETS: usize = 100;

/// Trained (analyzed) PostgreSQL-style estimator.
pub struct PostgresEstimator {
    /// Histograms for every data column, keyed by `(table, column)`.
    histograms: HashMap<(usize, usize), EquiDepthHistogram>,
    /// Row count per table.
    table_rows: Vec<f64>,
    /// Per join edge `(fk_table, pk_table)`: ndv of both key columns.
    join_ndv: HashMap<(usize, usize), (f64, f64)>,
}

impl PostgresEstimator {
    /// "ANALYZE": builds histograms and distinct counts.
    pub fn train(ctx: &TrainContext<'_>) -> Self {
        Self::analyze(ctx.dataset)
    }

    /// Direct construction from a dataset (no workload needed).
    pub fn analyze(ds: &Dataset) -> Self {
        let mut histograms = HashMap::new();
        for (t, table) in ds.tables.iter().enumerate() {
            for c in table.data_column_indices() {
                histograms.insert(
                    (t, c),
                    EquiDepthHistogram::build(&table.columns[c], BUCKETS),
                );
            }
        }
        let mut join_ndv = HashMap::new();
        for e in &ds.joins {
            let ndv_fk =
                ce_storage::stats::ColumnStats::compute(&ds.tables[e.fk_table].columns[e.fk_col])
                    .ndv as f64;
            let ndv_pk =
                ce_storage::stats::ColumnStats::compute(&ds.tables[e.pk_table].columns[e.pk_col])
                    .ndv as f64;
            join_ndv.insert((e.fk_table, e.pk_table), (ndv_fk, ndv_pk));
        }
        PostgresEstimator {
            histograms,
            table_rows: ds.tables.iter().map(|t| t.num_rows() as f64).collect(),
            join_ndv,
        }
    }

    /// Selectivity of all predicates on one table under independence.
    fn table_selectivity(&self, query: &Query, table: usize) -> f64 {
        let mut sel = 1.0f64;
        for p in query.predicates_on(table) {
            if let Some(h) = self.histograms.get(&(table, p.column)) {
                sel *= h.selectivity(p.lo, p.hi);
            }
        }
        sel
    }
}

impl CardEstimator for PostgresEstimator {
    fn kind(&self) -> ModelKind {
        ModelKind::Postgres
    }

    fn estimate(&self, query: &Query) -> f64 {
        let mut card = 1.0f64;
        for &t in &query.tables {
            let rows = self.table_rows.get(t).copied().unwrap_or(0.0);
            card *= rows * self.table_selectivity(query, t);
        }
        for &(a, b) in &query.joins {
            let (ndv_fk, ndv_pk) = self.join_ndv.get(&(a, b)).copied().unwrap_or((1.0, 1.0));
            card /= ndv_fk.max(ndv_pk).max(1.0);
        }
        card.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use ce_storage::exec::query_cardinality;
    use ce_storage::Predicate;
    use ce_workload::{generate_workload, metrics::qerror, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_on_full_scan() {
        let mut rng = StdRng::seed_from_u64(131);
        let ds = generate_dataset("pg", &DatasetSpec::small().single_table(), &mut rng);
        let est = PostgresEstimator::analyze(&ds);
        let q = Query::single_table(0, vec![]);
        let rows = ds.tables[0].num_rows() as f64;
        assert!((est.estimate(&q) - rows).abs() < 1e-9);
    }

    #[test]
    fn accurate_on_independent_single_table_ranges() {
        let mut rng = StdRng::seed_from_u64(132);
        let mut spec = DatasetSpec::small().single_table();
        spec.correlation = ce_datagen::SpecRange { lo: 0.0, hi: 0.0 };
        spec.skew = ce_datagen::SpecRange { lo: 0.0, hi: 0.1 };
        let ds = generate_dataset("pg2", &spec, &mut rng);
        let est = PostgresEstimator::analyze(&ds);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 100,
                max_predicates_per_table: 1,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        let mut bad = 0;
        for q in &queries {
            let truth = query_cardinality(&ds, q).unwrap() as f64;
            let e = est.estimate(q);
            if qerror(e, truth) > 3.0 {
                bad += 1;
            }
        }
        // One-predicate uniform queries: histograms should nail most.
        assert!(bad < 15, "bad = {bad}/100");
    }

    #[test]
    fn degrades_under_correlation() {
        // Two perfectly correlated columns: independence halves the exponent.
        let mut rng = StdRng::seed_from_u64(133);
        let mut spec = DatasetSpec::small().single_table();
        spec.correlation = ce_datagen::SpecRange { lo: 1.0, hi: 1.0 };
        spec.skew = ce_datagen::SpecRange { lo: 0.0, hi: 0.0 };
        spec.columns = ce_datagen::SpecRange { lo: 2, hi: 2 };
        spec.domain = ce_datagen::SpecRange { lo: 100, hi: 100 };
        let ds = generate_dataset("pg3", &spec, &mut rng);
        let est = PostgresEstimator::analyze(&ds);
        // Predicate selecting ~20% on both (identical) columns.
        let q = Query::single_table(
            0,
            vec![
                Predicate {
                    table: 0,
                    column: 0,
                    lo: 1,
                    hi: 20,
                },
                Predicate {
                    table: 0,
                    column: 1,
                    lo: 1,
                    hi: 20,
                },
            ],
        );
        let truth = query_cardinality(&ds, &q).unwrap() as f64;
        let e = est.estimate(&q);
        // Independence predicts sel ≈ 0.04 while the truth is ≈ 0.2.
        assert!(
            qerror(e, truth) > 2.0,
            "expected visible underestimate, got est {e} vs true {truth}"
        );
        assert!(e < truth);
    }
}
