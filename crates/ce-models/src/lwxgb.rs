//! LW-XGB — lightweight gradient-boosted trees (Dutt et al.), on the
//! from-scratch [`crate::gbdt::Gbdt`] substrate.
//!
//! Same flat query encoding and normalized log-card target as LW-NN; only
//! the regressor differs (tree ensemble instead of a neural net), matching
//! the paper's description "its query encoding method and training strategy
//! are the same as LW-NN".

use crate::encoding::SchemaEncoder;
use crate::gbdt::{Gbdt, GbdtParams};
use crate::traits::{CardEstimator, ModelKind, TrainContext};
use ce_storage::Query;

/// Trained LW-XGB model.
pub struct LwXgb {
    encoder: SchemaEncoder,
    trees: Gbdt,
}

impl LwXgb {
    /// Trains from the labeled query workload.
    pub fn train(ctx: &TrainContext<'_>) -> Self {
        let encoder = SchemaEncoder::capture(ctx.dataset);
        let xs: Vec<Vec<f32>> = ctx
            .train_queries
            .iter()
            .map(|lq| encoder.encode_flat(&lq.query))
            .collect();
        let ys: Vec<f32> = ctx
            .train_queries
            .iter()
            .map(|lq| encoder.normalize_card(lq.true_card as f64))
            .collect();
        let trees = Gbdt::fit(&xs, &ys, &GbdtParams::default());
        LwXgb { encoder, trees }
    }
}

impl CardEstimator for LwXgb {
    fn kind(&self) -> ModelKind {
        ModelKind::LwXgb
    }

    fn estimate(&self, query: &Query) -> f64 {
        let x = self.encoder.encode_flat(query);
        let y = self.trees.predict(&x).clamp(0.0, 1.0);
        self.encoder.denormalize_card(y).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use ce_workload::{generate_workload, label_workload, metrics::mean_qerror, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beats_wild_guessing_on_single_table() {
        let mut rng = StdRng::seed_from_u64(111);
        let ds = generate_dataset("xg", &DatasetSpec::small().single_table(), &mut rng);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 400,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        let labeled = label_workload(&ds, &queries).unwrap();
        let (train, test) = ce_workload::label::train_test_split(labeled, 0.8);
        let model = LwXgb::train(&TrainContext {
            dataset: &ds,
            train_queries: &train,
            seed: 3,
        });
        let est: Vec<f64> = test.iter().map(|lq| model.estimate(&lq.query)).collect();
        let tru: Vec<f64> = test.iter().map(|lq| lq.true_card as f64).collect();
        let q = mean_qerror(&est, &tru);
        assert!(q < 40.0, "mean q-error {q}");
    }
}
