//! LW-NN — lightweight neural network (Dutt et al., "Selectivity estimation
//! for range predicates using lightweight models").
//!
//! A small fully connected network over the flat range encoding, regressing
//! the normalized log-cardinality with a sigmoid output. Deliberately tiny:
//! the paper's Table V measures its inference at ~0.01 s for a whole
//! workload, the fastest of all models — our single 64-unit hidden layer
//! preserves that profile.

use crate::encoding::SchemaEncoder;
use crate::traits::{CardEstimator, ModelKind, TrainContext};
use ce_nn::{Activation, Matrix, Mlp};
use ce_storage::Query;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Trained LW-NN model.
pub struct LwNn {
    encoder: SchemaEncoder,
    net: Mlp,
}

impl LwNn {
    /// Number of training epochs over the labeled workload.
    const EPOCHS: usize = 40;
    /// Mini-batch size.
    const BATCH: usize = 64;
    /// Adam learning rate.
    const LR: f32 = 3e-3;

    /// Trains from the labeled query workload.
    pub fn train(ctx: &TrainContext<'_>) -> Self {
        let encoder = SchemaEncoder::capture(ctx.dataset);
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x1f00d);
        let mut net = Mlp::new(
            &[encoder.flat_dim(), 64, 1],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        let xs: Vec<Vec<f32>> = ctx
            .train_queries
            .iter()
            .map(|lq| encoder.encode_flat(&lq.query))
            .collect();
        let ys: Vec<f32> = ctx
            .train_queries
            .iter()
            .map(|lq| encoder.normalize_card(lq.true_card as f64))
            .collect();
        let mut order: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..Self::EPOCHS {
            order.shuffle(&mut rng);
            for chunk in order.chunks(Self::BATCH) {
                let bx = Matrix::from_rows(chunk.iter().map(|&i| xs[i].clone()).collect());
                let by = Matrix::from_rows(chunk.iter().map(|&i| vec![ys[i]]).collect());
                net.train_mse(&bx, &by, Self::LR);
            }
        }
        LwNn { encoder, net }
    }
}

impl CardEstimator for LwNn {
    fn kind(&self) -> ModelKind {
        ModelKind::LwNn
    }

    fn estimate(&self, query: &Query) -> f64 {
        let x = Matrix::row_vector(&self.encoder.encode_flat(query));
        let y = self.net.infer(&x);
        self.encoder.denormalize_card(y.data[0]).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::TrainContext;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use ce_workload::{generate_workload, label_workload, metrics::mean_qerror, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_better_than_constant_guess() {
        let mut rng = StdRng::seed_from_u64(91);
        let ds = generate_dataset("lw", &DatasetSpec::small().single_table(), &mut rng);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 400,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        let labeled = label_workload(&ds, &queries).unwrap();
        let (train, test) = ce_workload::label::train_test_split(labeled, 0.8);
        let model = LwNn::train(&TrainContext {
            dataset: &ds,
            train_queries: &train,
            seed: 1,
        });
        let est: Vec<f64> = test.iter().map(|lq| model.estimate(&lq.query)).collect();
        let tru: Vec<f64> = test.iter().map(|lq| lq.true_card as f64).collect();
        let q = mean_qerror(&est, &tru);
        // Constant-median guessing lands far above this on skewed workloads.
        assert!(q < 30.0, "mean q-error {q}");
        assert!(est.iter().all(|&e| e >= 1.0 && e.is_finite()));
    }
}
