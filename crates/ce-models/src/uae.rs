//! UAE — unified autoregressive estimator learning from both data and
//! queries (Wu & Cong, SIGMOD 2021).
//!
//! The original makes the autoregressive sampler differentiable
//! (Gumbel-Softmax) so query supervision flows into the density model. Our
//! substitution (documented in DESIGN.md) keeps the unified-information
//! architecture with a simpler mechanism: the NeuroCard-style [`ArModel`](crate::ar::ArModel)
//! supplies the data-driven estimate, and a query-driven **calibration
//! network** trained on the labeled workload corrects it multiplicatively in
//! log space. Both information sources are consulted on every estimate, and
//! inference keeps the high-latency progressive-sampling profile the paper
//! measures for UAE (Table V).

use crate::encoding::SchemaEncoder;
use crate::neurocard::NeuroCard;
use crate::traits::{CardEstimator, ModelKind, TrainContext};
use ce_nn::{Activation, Matrix, Mlp};
use ce_storage::Query;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Maximum absolute log-space correction (natural log).
const MAX_CORRECTION: f32 = 5.0;
/// Calibration training epochs.
const EPOCHS: usize = 30;
/// Adam learning rate.
const LR: f32 = 2e-3;

/// Trained UAE model.
pub struct Uae {
    ar: NeuroCard,
    encoder: SchemaEncoder,
    calibration: Mlp,
}

impl Uae {
    /// Trains the density model on data and the calibration net on queries.
    pub fn train(ctx: &TrainContext<'_>) -> Self {
        let ar = NeuroCard::learn(ctx.dataset, ctx.seed ^ 0x0ae);
        let encoder = SchemaEncoder::capture(ctx.dataset);
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xcab);
        let mut calibration = Mlp::new(
            &[encoder.flat_dim(), 32, 1],
            Activation::Relu,
            Activation::Tanh,
            &mut rng,
        );
        // Calibration targets: log(true/ar_estimate) / MAX_CORRECTION, on a
        // subsample of the training workload (AR inference is expensive).
        let mut idx: Vec<usize> = (0..ctx.train_queries.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(200);
        let mut xs = Vec::with_capacity(idx.len());
        let mut ys = Vec::with_capacity(idx.len());
        for &i in &idx {
            let lq = &ctx.train_queries[i];
            let est = ar.estimate(&lq.query).max(1.0);
            let target = ((lq.true_card.max(1) as f32).ln() - (est as f32).ln())
                .clamp(-MAX_CORRECTION, MAX_CORRECTION)
                / MAX_CORRECTION;
            xs.push(encoder.encode_flat(&lq.query));
            ys.push(vec![target]);
        }
        if !xs.is_empty() {
            let x = Matrix::from_rows(xs);
            let y = Matrix::from_rows(ys);
            for _ in 0..EPOCHS {
                calibration.train_mse(&x, &y, LR);
            }
        }
        Uae {
            ar,
            encoder,
            calibration,
        }
    }
}

impl CardEstimator for Uae {
    fn kind(&self) -> ModelKind {
        ModelKind::Uae
    }

    fn estimate(&self, query: &Query) -> f64 {
        let base = self.ar.estimate(query).max(1.0);
        let x = Matrix::row_vector(&self.encoder.encode_flat(query));
        let corr = self.calibration.infer(&x).data[0] * MAX_CORRECTION;
        (base * (corr as f64).exp()).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use ce_workload::{generate_workload, label_workload, metrics::mean_qerror, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibration_does_not_hurt_much_and_estimates_are_finite() {
        let mut rng = StdRng::seed_from_u64(171);
        let ds = generate_dataset("uae", &DatasetSpec::small().single_table(), &mut rng);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 150,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        let labeled = label_workload(&ds, &queries).unwrap();
        let (train, test) = ce_workload::label::train_test_split(labeled, 0.8);
        let model = Uae::train(&TrainContext {
            dataset: &ds,
            train_queries: &train,
            seed: 8,
        });
        let est: Vec<f64> = test.iter().map(|lq| model.estimate(&lq.query)).collect();
        let tru: Vec<f64> = test.iter().map(|lq| lq.true_card as f64).collect();
        assert!(est.iter().all(|e| e.is_finite() && *e >= 1.0));
        let q = mean_qerror(&est, &tru);
        assert!(q < 50.0, "mean q-error {q}");
    }
}
