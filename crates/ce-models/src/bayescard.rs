//! BayesCard — Bayesian-network cardinality estimation (Wu et al.).
//!
//! Per table: columns are discretized into equi-width bins, a Chow-Liu tree
//! (maximum-spanning-tree over pairwise mutual information) provides the
//! network structure, and Laplace-smoothed CPTs `P(child | parent)` are
//! estimated by counting. Range-predicate probabilities are computed exactly
//! over the tree by bottom-up message passing with fractional bin coverage.
//! Join queries use the fanout-style [`JoinIndex`], as in DeepDB.

use crate::joinglue::JoinIndex;
use crate::traits::{CardEstimator, ModelKind, TrainContext};
use ce_storage::{Dataset, Query, Table, Value};
use std::collections::HashMap;

/// Bins per column.
const BINS: usize = 40;
/// Laplace smoothing pseudo-count.
const ALPHA: f64 = 0.1;

/// Equi-width discretizer for one column.
#[derive(Debug, Clone)]
struct Binner {
    min: Value,
    max: Value,
    width: f64,
}

impl Binner {
    fn new(min: Value, max: Value) -> Self {
        let width = (((max - min + 1) as f64) / BINS as f64).max(1e-9);
        Binner { min, max, width }
    }

    fn bin_of(&self, v: Value) -> usize {
        (((v - self.min) as f64 / self.width) as usize).min(BINS - 1)
    }

    /// Fraction of bin `b` that overlaps `[lo, hi]`.
    fn coverage(&self, b: usize, lo: Value, hi: Value) -> f64 {
        let b_lo = self.min as f64 + b as f64 * self.width;
        let b_hi = (b_lo + self.width).min(self.max as f64 + 1.0);
        let o_lo = b_lo.max(lo as f64);
        let o_hi = b_hi.min(hi as f64 + 1.0);
        ((o_hi - o_lo) / (b_hi - b_lo).max(1e-9)).clamp(0.0, 1.0)
    }
}

/// Chow-Liu tree Bayesian network over one table.
#[derive(Debug, Clone)]
struct TableBayesNet {
    binners: Vec<Binner>,
    /// Original table column index per network node.
    columns: Vec<usize>,
    /// Children lists.
    children: Vec<Vec<usize>>,
    /// Root marginal `P(bin)`.
    root_marginal: Vec<f64>,
    /// Per non-root node: CPT `P(bin | parent_bin)` as `[parent_bin][bin]`.
    cpts: Vec<Vec<Vec<f64>>>,
    root: usize,
}

impl TableBayesNet {
    fn learn(table: &Table) -> Option<Self> {
        let columns = table.data_column_indices();
        if columns.is_empty() {
            return None;
        }
        let n = columns.len();
        let rows = table.num_rows();
        let binners: Vec<Binner> = columns
            .iter()
            .map(|&c| {
                let col = &table.columns[c];
                Binner::new(col.min().unwrap_or(0), col.max().unwrap_or(0))
            })
            .collect();
        let binned: Vec<Vec<usize>> = columns
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                table.columns[c]
                    .data
                    .iter()
                    .map(|&v| binners[i].bin_of(v))
                    .collect()
            })
            .collect();

        // Pairwise mutual information.
        let mut mi = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                mi[i][j] = mutual_information(&binned[i], &binned[j], rows);
                mi[j][i] = mi[i][j];
            }
        }
        // Maximum spanning tree (Prim).
        let root = 0usize;
        let mut in_tree = vec![false; n];
        in_tree[root] = true;
        let mut parents = vec![usize::MAX; n];
        for _ in 1..n {
            let mut best: Option<(usize, usize, f64)> = None;
            for a in 0..n {
                if !in_tree[a] {
                    continue;
                }
                for b in 0..n {
                    if in_tree[b] {
                        continue;
                    }
                    if best.is_none_or(|(_, _, w)| mi[a][b] > w) {
                        best = Some((a, b, mi[a][b]));
                    }
                }
            }
            let (a, b, _) = best.expect("spanning tree grows one node per step");
            parents[b] = a;
            in_tree[b] = true;
        }
        let mut children = vec![Vec::new(); n];
        for b in 0..n {
            if parents[b] != usize::MAX {
                children[parents[b]].push(b);
            }
        }

        // Root marginal.
        let mut root_marginal = vec![ALPHA; BINS];
        for r in 0..rows {
            root_marginal[binned[root][r]] += 1.0;
        }
        let z: f64 = root_marginal.iter().sum();
        root_marginal.iter_mut().for_each(|p| *p /= z);

        // CPTs.
        let mut cpts = vec![Vec::new(); n];
        for node in 0..n {
            let p = parents[node];
            if p == usize::MAX {
                continue;
            }
            let mut cpt = vec![vec![ALPHA; BINS]; BINS];
            for r in 0..rows {
                cpt[binned[p][r]][binned[node][r]] += 1.0;
            }
            for row in &mut cpt {
                let z: f64 = row.iter().sum();
                row.iter_mut().for_each(|v| *v /= z);
            }
            cpts[node] = cpt;
        }

        Some(TableBayesNet {
            binners,
            columns,

            children,
            root_marginal,
            cpts,
            root,
        })
    }

    /// Probability that a random row satisfies all ranges (keyed by table
    /// column index).
    fn selectivity(&self, ranges: &HashMap<usize, (Value, Value)>) -> f64 {
        // Per-node, per-bin coverage factor.
        let coverage: Vec<Vec<f64>> = (0..self.columns.len())
            .map(|node| {
                let col = self.columns[node];
                match ranges.get(&col) {
                    Some(&(lo, hi)) => (0..BINS)
                        .map(|b| self.binners[node].coverage(b, lo, hi))
                        .collect(),
                    None => vec![1.0; BINS],
                }
            })
            .collect();
        let msg = self.message(self.root, &coverage);
        (0..BINS)
            .map(|b| self.root_marginal[b] * msg[b])
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Bottom-up message: `m(node)[bin] = cov(node, bin) · Π_child Σ_cb
    /// P(cb|bin)·m(child)[cb]` — computed iteratively to avoid recursion.
    fn message(&self, node: usize, coverage: &[Vec<f64>]) -> Vec<f64> {
        let mut out: Vec<f64> = coverage[node].clone();
        for &child in &self.children[node] {
            let child_msg = self.message(child, coverage);
            for (b, o) in out.iter_mut().enumerate() {
                let s: f64 = (0..BINS)
                    .map(|cb| self.cpts[child][b][cb] * child_msg[cb])
                    .sum();
                *o *= s;
            }
        }
        out
    }
}

fn mutual_information(a: &[usize], b: &[usize], rows: usize) -> f64 {
    if rows == 0 {
        return 0.0;
    }
    let mut joint = vec![vec![0.0f64; BINS]; BINS];
    let mut pa = vec![0.0f64; BINS];
    let mut pb = vec![0.0f64; BINS];
    for r in 0..rows {
        joint[a[r]][b[r]] += 1.0;
        pa[a[r]] += 1.0;
        pb[b[r]] += 1.0;
    }
    let n = rows as f64;
    let mut mi = 0.0;
    for i in 0..BINS {
        for j in 0..BINS {
            let pij = joint[i][j] / n;
            if pij > 1e-12 {
                mi += pij * (pij / ((pa[i] / n) * (pb[j] / n))).ln();
            }
        }
    }
    mi.max(0.0)
}

/// Trained BayesCard model.
pub struct BayesCardModel {
    nets: Vec<Option<TableBayesNet>>,
    table_rows: Vec<f64>,
    join_index: JoinIndex,
}

impl BayesCardModel {
    /// Learns per-table networks and the join index.
    pub fn train(ctx: &TrainContext<'_>) -> Self {
        Self::learn(ctx.dataset)
    }

    /// Direct data-driven construction.
    pub fn learn(ds: &Dataset) -> Self {
        BayesCardModel {
            nets: ds.tables.iter().map(TableBayesNet::learn).collect(),
            table_rows: ds.tables.iter().map(|t| t.num_rows() as f64).collect(),
            join_index: JoinIndex::build(ds),
        }
    }

    fn table_selectivity(&self, query: &Query, table: usize) -> f64 {
        let ranges: HashMap<usize, (Value, Value)> = query
            .predicates_on(table)
            .into_iter()
            .map(|p| (p.column, (p.lo, p.hi)))
            .collect();
        if ranges.is_empty() {
            return 1.0;
        }
        match &self.nets[table] {
            Some(net) => net.selectivity(&ranges),
            None => 1.0,
        }
    }
}

impl CardEstimator for BayesCardModel {
    fn kind(&self) -> ModelKind {
        ModelKind::BayesCard
    }

    fn estimate(&self, query: &Query) -> f64 {
        if query.tables.len() == 1 {
            let t = query.tables[0];
            return (self.table_rows[t] * self.table_selectivity(query, t)).max(1.0);
        }
        self.join_index
            .estimate(query, |t| self.table_selectivity(query, t))
            .max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec, SpecRange};
    use ce_storage::exec::query_cardinality;
    use ce_storage::Predicate;
    use ce_workload::metrics::qerror;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn captures_pairwise_dependence() {
        let mut rng = StdRng::seed_from_u64(151);
        let mut spec = DatasetSpec::small().single_table();
        spec.correlation = SpecRange { lo: 1.0, hi: 1.0 };
        spec.skew = SpecRange { lo: 0.0, hi: 0.0 };
        spec.columns = SpecRange { lo: 2, hi: 2 };
        spec.domain = SpecRange { lo: 120, hi: 120 };
        spec.rows = SpecRange {
            lo: 5_000,
            hi: 5_000,
        };
        let ds = generate_dataset("bc", &spec, &mut rng);
        let model = BayesCardModel::learn(&ds);
        let pg = crate::postgres::PostgresEstimator::analyze(&ds);
        let q = Query::single_table(
            0,
            vec![
                Predicate {
                    table: 0,
                    column: 0,
                    lo: 1,
                    hi: 30,
                },
                Predicate {
                    table: 0,
                    column: 1,
                    lo: 1,
                    hi: 30,
                },
            ],
        );
        let truth = query_cardinality(&ds, &q).unwrap() as f64;
        let qe_bayes = qerror(model.estimate(&q), truth);
        let qe_pg = qerror(pg.estimate(&q), truth);
        assert!(
            qe_bayes < qe_pg,
            "BayesCard {qe_bayes} should beat independence {qe_pg}"
        );
        assert!(qe_bayes < 2.0, "q-error {qe_bayes}");
    }

    #[test]
    fn selectivity_of_full_range_is_one() {
        let mut rng = StdRng::seed_from_u64(152);
        let ds = generate_dataset("bc2", &DatasetSpec::small().single_table(), &mut rng);
        let model = BayesCardModel::learn(&ds);
        let col = ds.tables[0].data_column_indices()[0];
        let c = &ds.tables[0].columns[col];
        let q = Query::single_table(
            0,
            vec![Predicate {
                table: 0,
                column: col,
                lo: c.min().unwrap(),
                hi: c.max().unwrap(),
            }],
        );
        let est = model.estimate(&q);
        let rows = ds.tables[0].num_rows() as f64;
        assert!((est - rows).abs() / rows < 0.05, "est {est} vs rows {rows}");
    }

    #[test]
    fn multi_table_path_works() {
        let mut rng = StdRng::seed_from_u64(153);
        let ds = generate_dataset("bc3", &DatasetSpec::small().multi_table(), &mut rng);
        let model = BayesCardModel::learn(&ds);
        let q = Query {
            tables: (0..ds.num_tables()).collect(),
            joins: ds.joins.iter().map(|j| (j.fk_table, j.pk_table)).collect(),
            predicates: vec![],
        };
        let truth = query_cardinality(&ds, &q).unwrap() as f64;
        assert!((model.estimate(&q) - truth.max(1.0)).abs() < 1e-6);
    }
}
