//! # ce-models — the learned cardinality-estimation model zoo
//!
//! The paper's testbed implements "seven state-of-the-art CE models,
//! including three query-driven methods, three data-driven methods, and one
//! hybrid approach" (§IV-B1), plus a PostgreSQL estimator and an ensemble as
//! comparison baselines (§VII-A). This crate implements all nine behind one
//! [`CardEstimator`] trait, from scratch on the `ce-nn` substrate:
//!
//! | Model | Type | Reproduction |
//! |---|---|---|
//! | [`mscn`] MSCN | query-driven | multi-set convolutional network: per-set MLPs with average pooling over table/join/predicate sets |
//! | [`lwnn`] LW-NN | query-driven | lightweight fully connected net on flat range encodings |
//! | [`lwxgb`] LW-XGB | query-driven | gradient-boosted regression trees ([`gbdt`], from scratch) |
//! | [`spn`] DeepDB | data-driven | sum-product network: k-means sum splits, correlation-driven product splits, histogram leaves |
//! | [`bayescard`] BayesCard | data-driven | Chow-Liu tree Bayesian network with CPT message passing |
//! | [`neurocard`] NeuroCard | data-driven | autoregressive model ([`ar`]) over full-join samples + progressive sampling |
//! | [`uae`] UAE | hybrid | the autoregressive model additionally calibrated from training queries |
//! | [`postgres`] PostgreSQL | baseline | equi-depth histograms + independence + System-R join formula |
//! | [`ensemble`] Ensemble | baseline | performance-weighted log-space average of all models |
//!
//! Multi-table estimation for the per-table data-driven models goes through
//! [`joinglue`] (precomputed full-join sizes of every connected join
//! subtree), mirroring DeepDB's fanout method.

pub mod ar;
pub mod bayescard;
pub mod encoding;
pub mod ensemble;
pub mod gbdt;
pub mod joinglue;
pub mod lwnn;
pub mod lwxgb;
pub mod mscn;
pub mod neurocard;
pub mod postgres;
pub mod spn;
pub mod traits;
pub mod uae;

pub use traits::{
    build_model, CardEstimator, ModelKind, TrainContext, ALL_MODELS, SELECTABLE_MODELS,
};
