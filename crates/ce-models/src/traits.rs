//! The estimator trait and the model registry.

use ce_storage::{Dataset, Query};
use ce_workload::LabeledQuery;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything a model may consume at training time. Query-driven models use
/// `train_queries`; data-driven models read `dataset`; UAE uses both.
pub struct TrainContext<'a> {
    /// The dataset the model will serve estimates for.
    pub dataset: &'a Dataset,
    /// Labeled training workload (the paper's 9,000-query training split).
    pub train_queries: &'a [LabeledQuery],
    /// Seed for all stochastic components of training.
    pub seed: u64,
}

/// A trained cardinality estimator.
///
/// Estimation is immutable and must not touch base data: everything a model
/// needs is captured during construction — the property that makes CE-model
/// inference cheap compared to executing the query.
pub trait CardEstimator: Send + Sync {
    /// Model kind.
    fn kind(&self) -> ModelKind;
    /// Estimated result cardinality (rows) of `query`.
    fn estimate(&self, query: &Query) -> f64;
    /// Human-readable name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }
}

/// The candidate models of the advisor plus the two comparison baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Multi-set convolutional network (query-driven).
    Mscn,
    /// Lightweight neural network (query-driven).
    LwNn,
    /// Lightweight gradient-boosted trees (query-driven).
    LwXgb,
    /// DeepDB-style sum-product network (data-driven).
    DeepDb,
    /// BayesCard-style Bayesian network (data-driven).
    BayesCard,
    /// NeuroCard-style autoregressive model (data-driven).
    NeuroCard,
    /// UAE-style hybrid (data + queries).
    Uae,
    /// PostgreSQL-style histogram estimator (baseline).
    Postgres,
    /// Performance-weighted ensemble of all learned models (baseline).
    Ensemble,
}

impl ModelKind {
    /// Stable display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Mscn => "MSCN",
            ModelKind::LwNn => "LW-NN",
            ModelKind::LwXgb => "LW-XGB",
            ModelKind::DeepDb => "DeepDB",
            ModelKind::BayesCard => "BayesCard",
            ModelKind::NeuroCard => "NeuroCard",
            ModelKind::Uae => "UAE",
            ModelKind::Postgres => "Postgres",
            ModelKind::Ensemble => "Ensemble",
        }
    }

    /// True for query-driven models (trained from labeled queries only).
    pub fn is_query_driven(&self) -> bool {
        matches!(self, ModelKind::Mscn | ModelKind::LwNn | ModelKind::LwXgb)
    }

    /// True for data-driven models (trained from base data only).
    pub fn is_data_driven(&self) -> bool {
        matches!(
            self,
            ModelKind::DeepDb | ModelKind::BayesCard | ModelKind::NeuroCard
        )
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The seven models the advisor selects among (paper §IV-B1).
pub const SELECTABLE_MODELS: [ModelKind; 7] = [
    ModelKind::Mscn,
    ModelKind::LwNn,
    ModelKind::LwXgb,
    ModelKind::DeepDb,
    ModelKind::BayesCard,
    ModelKind::NeuroCard,
    ModelKind::Uae,
];

/// All nine estimators, including the Fig. 9 comparison baselines.
pub const ALL_MODELS: [ModelKind; 9] = [
    ModelKind::Mscn,
    ModelKind::LwNn,
    ModelKind::LwXgb,
    ModelKind::DeepDb,
    ModelKind::BayesCard,
    ModelKind::NeuroCard,
    ModelKind::Uae,
    ModelKind::Postgres,
    ModelKind::Ensemble,
];

/// Trains one model of the requested kind.
pub fn build_model(kind: ModelKind, ctx: &TrainContext<'_>) -> Box<dyn CardEstimator> {
    match kind {
        ModelKind::Mscn => Box::new(crate::mscn::Mscn::train(ctx)),
        ModelKind::LwNn => Box::new(crate::lwnn::LwNn::train(ctx)),
        ModelKind::LwXgb => Box::new(crate::lwxgb::LwXgb::train(ctx)),
        ModelKind::DeepDb => Box::new(crate::spn::DeepDb::train(ctx)),
        ModelKind::BayesCard => Box::new(crate::bayescard::BayesCardModel::train(ctx)),
        ModelKind::NeuroCard => Box::new(crate::neurocard::NeuroCard::train(ctx)),
        ModelKind::Uae => Box::new(crate::uae::Uae::train(ctx)),
        ModelKind::Postgres => Box::new(crate::postgres::PostgresEstimator::train(ctx)),
        ModelKind::Ensemble => Box::new(crate::ensemble::Ensemble::train(ctx)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_partitions() {
        assert_eq!(SELECTABLE_MODELS.len(), 7);
        assert_eq!(ALL_MODELS.len(), 9);
        let qd = SELECTABLE_MODELS
            .iter()
            .filter(|m| m.is_query_driven())
            .count();
        let dd = SELECTABLE_MODELS
            .iter()
            .filter(|m| m.is_data_driven())
            .count();
        assert_eq!(qd, 3, "three query-driven models");
        assert_eq!(dd, 3, "three data-driven models");
        // The remaining one is the hybrid.
        assert!(SELECTABLE_MODELS.contains(&ModelKind::Uae));
        assert!(!ModelKind::Uae.is_query_driven() && !ModelKind::Uae.is_data_driven());
    }

    #[test]
    fn names_are_paper_names() {
        assert_eq!(ModelKind::Mscn.name(), "MSCN");
        assert_eq!(ModelKind::DeepDb.to_string(), "DeepDB");
        assert_eq!(ModelKind::LwXgb.name(), "LW-XGB");
    }
}
