//! From-scratch gradient-boosted regression trees (the XGBoost substitute
//! behind LW-XGB — no tree-boosting crate is in the allowed dependency set).
//!
//! Squared-error boosting: each round fits an exact-greedy regression tree
//! to the current residuals and the ensemble advances by `learning_rate`
//! times the tree's prediction. Split gain is variance reduction; leaves
//! predict the residual mean.

use serde::{Deserialize, Serialize};

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub rounds: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage applied to every tree.
    pub learning_rate: f32,
    /// Minimum samples in a node to consider splitting.
    pub min_samples_split: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            rounds: 60,
            max_depth: 4,
            learning_rate: 0.2,
            min_samples_split: 8,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f32]) -> f32 {
        match self {
            Node::Leaf { value } => *value,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

/// A trained boosted-tree regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    base: f32,
    trees: Vec<Node>,
    lr: f32,
}

impl Gbdt {
    /// Fits on feature rows `xs` and targets `ys`.
    pub fn fit(xs: &[Vec<f32>], ys: &[f32], params: &GbdtParams) -> Self {
        assert_eq!(xs.len(), ys.len(), "feature/target count mismatch");
        if xs.is_empty() {
            return Gbdt {
                base: 0.0,
                trees: Vec::new(),
                lr: params.learning_rate,
            };
        }
        let base = ys.iter().sum::<f32>() / ys.len() as f32;
        let mut residuals: Vec<f32> = ys.iter().map(|&y| y - base).collect();
        let mut trees = Vec::with_capacity(params.rounds);
        let idx: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..params.rounds {
            let tree = build_tree(xs, &residuals, &idx, params.max_depth, params);
            for (i, r) in residuals.iter_mut().enumerate() {
                *r -= params.learning_rate * tree.predict(&xs[i]);
            }
            trees.push(tree);
        }
        Gbdt {
            base,
            trees,
            lr: params.learning_rate,
        }
    }

    /// Predicts one sample.
    pub fn predict(&self, x: &[f32]) -> f32 {
        let mut y = self.base;
        for t in &self.trees {
            y += self.lr * t.predict(x);
        }
        y
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

fn mean(residuals: &[f32], idx: &[usize]) -> f32 {
    if idx.is_empty() {
        return 0.0;
    }
    idx.iter().map(|&i| residuals[i]).sum::<f32>() / idx.len() as f32
}

fn build_tree(
    xs: &[Vec<f32>],
    residuals: &[f32],
    idx: &[usize],
    depth: usize,
    params: &GbdtParams,
) -> Node {
    if depth == 0 || idx.len() < params.min_samples_split {
        return Node::Leaf {
            value: mean(residuals, idx),
        };
    }
    let dims = xs[0].len();
    // Best split = max variance reduction, exact greedy over sorted values.
    let total_sum: f32 = idx.iter().map(|&i| residuals[i]).sum();
    let total_cnt = idx.len() as f32;
    let mut best: Option<(usize, f32, f32)> = None; // (feature, threshold, gain)
    #[allow(clippy::needless_range_loop)]
    for f in 0..dims {
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| {
            xs[a][f]
                .partial_cmp(&xs[b][f])
                .expect("features are finite")
        });
        let mut left_sum = 0.0f32;
        let mut left_cnt = 0.0f32;
        for w in 0..order.len() - 1 {
            left_sum += residuals[order[w]];
            left_cnt += 1.0;
            let (xa, xb) = (xs[order[w]][f], xs[order[w + 1]][f]);
            if xa == xb {
                continue; // cannot split between equal values
            }
            let right_sum = total_sum - left_sum;
            let right_cnt = total_cnt - left_cnt;
            // Variance-reduction gain ∝ n_l·mean_l² + n_r·mean_r².
            let gain = left_sum * left_sum / left_cnt + right_sum * right_sum / right_cnt
                - total_sum * total_sum / total_cnt;
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((f, (xa + xb) * 0.5, gain));
            }
        }
    }
    let Some((feature, threshold, gain)) = best else {
        return Node::Leaf {
            value: mean(residuals, idx),
        };
    };
    if gain <= 1e-9 {
        return Node::Leaf {
            value: mean(residuals, idx),
        };
    }
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| xs[i][feature] <= threshold);
    Node::Split {
        feature,
        threshold,
        left: Box::new(build_tree(xs, residuals, &left_idx, depth - 1, params)),
        right: Box::new(build_tree(xs, residuals, &right_idx, depth - 1, params)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_piecewise_function() {
        // y = 1 if x < 0.5 else 5.
        let xs: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32 / 100.0]).collect();
        let ys: Vec<f32> = xs
            .iter()
            .map(|x| if x[0] < 0.5 { 1.0 } else { 5.0 })
            .collect();
        let g = Gbdt::fit(&xs, &ys, &GbdtParams::default());
        assert!((g.predict(&[0.2]) - 1.0).abs() < 0.2);
        assert!((g.predict(&[0.8]) - 5.0).abs() < 0.2);
        assert_eq!(g.num_trees(), 60);
    }

    #[test]
    fn fits_additive_two_features() {
        let xs: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![(i % 20) as f32 / 20.0, (i / 20) as f32 / 10.0])
            .collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x[0] + 3.0 * x[1]).collect();
        let g = Gbdt::fit(&xs, &ys, &GbdtParams::default());
        let mut mse = 0.0;
        for (x, &y) in xs.iter().zip(&ys) {
            let d = g.predict(x) - y;
            mse += d * d;
        }
        mse /= xs.len() as f32;
        assert!(mse < 0.05, "mse = {mse}");
    }

    #[test]
    fn constant_target_yields_constant_prediction() {
        let xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let ys = vec![7.0f32; 50];
        let g = Gbdt::fit(&xs, &ys, &GbdtParams::default());
        assert!((g.predict(&[25.0]) - 7.0).abs() < 1e-4);
    }

    #[test]
    fn empty_training_set() {
        let g = Gbdt::fit(&[], &[], &GbdtParams::default());
        assert_eq!(g.predict(&[1.0]), 0.0);
    }
}
