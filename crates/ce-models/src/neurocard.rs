//! NeuroCard — one deep autoregressive estimator over the full join (Yang
//! et al., VLDB 2021).
//!
//! Training draws uniform samples from the full join of *all* tables (via
//! the engine's weighted join sampler — the same mechanism NeuroCard uses)
//! and fits the shared [`ArModel`] over every data column. A query is
//! answered as `P(predicates) × |full join of the query's subtree|`, with
//! `P` estimated by progressive sampling.
//!
//! Deviation noted in DESIGN.md: `P` is measured in the full-join
//! distribution rather than re-weighted per query subtree by fanout columns;
//! this keeps the model faithful on single tables and full joins, and is an
//! approximation for partial-join queries — an error profile of the same
//! shape as the original's fanout-scaling approximation.

use crate::ar::ArModel;
use crate::joinglue::JoinIndex;
use crate::traits::{CardEstimator, ModelKind, TrainContext};
use ce_storage::exec::sample_join;
use ce_storage::{Dataset, Query, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Training-sample budget.
const TRAIN_SAMPLES: usize = 1_500;
/// Monte-Carlo samples per estimate (the dominant inference cost).
const MC_SAMPLES: usize = 48;
/// Cap on modeled columns (widest datasets are truncated).
const MAX_COLUMNS: usize = 12;

/// Trained NeuroCard model.
pub struct NeuroCard {
    model: ArModel,
    /// Maps `(table, column)` to the modeled column slot.
    slots: HashMap<(usize, usize), usize>,
    join_index: JoinIndex,
}

impl NeuroCard {
    /// Trains on full-join samples of the dataset.
    pub fn train(ctx: &TrainContext<'_>) -> Self {
        Self::learn(ctx.dataset, ctx.seed)
    }

    /// Direct data-driven construction.
    pub fn learn(ds: &Dataset, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xca2d);
        // Modeled columns: data columns of all tables, in schema order.
        let mut modeled: Vec<(usize, usize)> = Vec::new();
        for (t, table) in ds.tables.iter().enumerate() {
            for c in table.data_column_indices() {
                modeled.push((t, c));
            }
        }
        modeled.truncate(MAX_COLUMNS);

        // Full-join sample (single table: direct row sample).
        let full_query = Query {
            tables: (0..ds.num_tables()).collect(),
            joins: ds.joins.iter().map(|j| (j.fk_table, j.pk_table)).collect(),
            predicates: vec![],
        };
        let sample = sample_join(ds, &full_query, TRAIN_SAMPLES, &mut rng)
            .expect("dataset join graph is a connected tree");
        // Project the sample onto the modeled columns.
        let proj: Vec<usize> = modeled
            .iter()
            .map(|&(t, c)| {
                sample
                    .schema
                    .iter()
                    .position(|&(st, sc)| st == t && sc == c)
                    .expect("modeled column present in join sample schema")
            })
            .collect();
        let rows: Vec<Vec<Value>> = sample
            .rows
            .iter()
            .map(|r| proj.iter().map(|&i| r[i]).collect())
            .collect();
        let bounds: Vec<(Value, Value)> = modeled
            .iter()
            .map(|&(t, c)| {
                let col = &ds.tables[t].columns[c];
                (col.min().unwrap_or(0), col.max().unwrap_or(0))
            })
            .collect();
        let model = ArModel::fit(&rows, &bounds, MC_SAMPLES, seed ^ 0x0ca);
        let slots = modeled
            .into_iter()
            .enumerate()
            .map(|(slot, key)| (key, slot))
            .collect();
        NeuroCard {
            model,
            slots,
            join_index: JoinIndex::build(ds),
        }
    }
}

impl CardEstimator for NeuroCard {
    fn kind(&self) -> ModelKind {
        ModelKind::NeuroCard
    }

    fn estimate(&self, query: &Query) -> f64 {
        let mut ranges: Vec<Option<(Value, Value)>> = vec![None; self.model.num_columns()];
        for p in &query.predicates {
            if let Some(&slot) = self.slots.get(&(p.table, p.column)) {
                // Conjoin with any existing range on the same column.
                ranges[slot] = Some(match ranges[slot] {
                    Some((lo, hi)) => (lo.max(p.lo), hi.min(p.hi)),
                    None => (p.lo, p.hi),
                });
            }
        }
        let p = self.model.prob(&ranges);
        let scale = self.join_index.full_join_size(query).unwrap_or(0) as f64;
        (p * scale).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec, SpecRange};
    use ce_storage::exec::query_cardinality;
    use ce_storage::Predicate;
    use ce_workload::metrics::qerror;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accurate_on_correlated_single_table() {
        let mut rng = StdRng::seed_from_u64(161);
        let mut spec = DatasetSpec::small().single_table();
        spec.correlation = SpecRange { lo: 0.9, hi: 1.0 };
        spec.skew = SpecRange { lo: 0.0, hi: 0.2 };
        spec.columns = SpecRange { lo: 3, hi: 3 };
        spec.domain = SpecRange { lo: 80, hi: 80 };
        spec.rows = SpecRange {
            lo: 4_000,
            hi: 4_000,
        };
        let ds = generate_dataset("nc", &spec, &mut rng);
        let model = NeuroCard::learn(&ds, 5);
        let q = Query::single_table(
            0,
            vec![
                Predicate {
                    table: 0,
                    column: 0,
                    lo: 1,
                    hi: 25,
                },
                Predicate {
                    table: 0,
                    column: 1,
                    lo: 1,
                    hi: 25,
                },
            ],
        );
        let truth = query_cardinality(&ds, &q).unwrap() as f64;
        let qe = qerror(model.estimate(&q), truth);
        assert!(qe < 3.0, "q-error {qe}");
    }

    #[test]
    fn join_query_scale_is_subtree_size() {
        let mut rng = StdRng::seed_from_u64(162);
        let ds = generate_dataset("ncm", &DatasetSpec::small().multi_table(), &mut rng);
        let model = NeuroCard::learn(&ds, 6);
        let q = Query {
            tables: (0..ds.num_tables()).collect(),
            joins: ds.joins.iter().map(|j| (j.fk_table, j.pk_table)).collect(),
            predicates: vec![],
        };
        let truth = query_cardinality(&ds, &q).unwrap() as f64;
        // No predicates → P = 1 → exact full-join size.
        assert!((model.estimate(&q) - truth.max(1.0)).abs() < 1e-6);
    }
}
