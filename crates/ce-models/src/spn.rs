//! DeepDB — relational sum-product networks (Hilprecht et al., VLDB 2020).
//!
//! Per-table SPNs learned exactly like the original: **sum nodes** split rows
//! into clusters (k-means, the paper's "row clusters"), **product nodes**
//! split columns into independent groups ("column clusters", via pairwise
//! correlation), and **leaves** hold per-column histograms over their row
//! subset. Probability of a conjunctive range query is evaluated bottom-up.
//! Join queries go through the fanout-style [`JoinIndex`].

use crate::joinglue::JoinIndex;
use crate::traits::{CardEstimator, ModelKind, TrainContext};
use ce_nn::kmeans;
use ce_storage::stats::EquiDepthHistogram;
use ce_storage::{Column, Dataset, Query, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Pearson threshold above which two columns land in the same product group.
const CORR_THRESHOLD: f64 = 0.3;
/// Minimum rows for a sum split.
const MIN_ROWS: usize = 16;
/// Maximum recursion depth.
const MAX_DEPTH: usize = 8;
/// Histogram buckets at leaves.
const LEAF_BUCKETS: usize = 40;

/// One SPN over a subset of a table's columns.
#[derive(Debug, Clone)]
enum SpnNode {
    /// Weighted mixture over row clusters.
    Sum {
        weights: Vec<f64>,
        children: Vec<SpnNode>,
    },
    /// Product over independent column groups.
    Product { children: Vec<SpnNode> },
    /// Histogram over one column's rows.
    Leaf {
        col: usize,
        hist: EquiDepthHistogram,
    },
}

impl SpnNode {
    /// Probability of the conjunctive ranges (keyed by table column index).
    fn prob(&self, ranges: &HashMap<usize, (Value, Value)>) -> f64 {
        match self {
            SpnNode::Leaf { col, hist } => match ranges.get(col) {
                Some(&(lo, hi)) => hist.selectivity(lo, hi),
                None => 1.0,
            },
            SpnNode::Product { children } => children.iter().map(|c| c.prob(ranges)).product(),
            SpnNode::Sum { weights, children } => weights
                .iter()
                .zip(children)
                .map(|(w, c)| w * c.prob(ranges))
                .sum(),
        }
    }

    fn node_count(&self) -> usize {
        match self {
            SpnNode::Leaf { .. } => 1,
            SpnNode::Product { children } | SpnNode::Sum { children, .. } => {
                1 + children.iter().map(SpnNode::node_count).sum::<usize>()
            }
        }
    }
}

/// SPN for a whole table.
#[derive(Debug, Clone)]
struct TableSpn {
    root: SpnNode,
    num_rows: f64,
}

impl TableSpn {
    fn learn(table: &Table, rng: &mut StdRng) -> Self {
        let cols = table.data_column_indices();
        let rows: Vec<u32> = (0..table.num_rows() as u32).collect();
        let root = if cols.is_empty() {
            // Key-only table: constant probability 1.
            SpnNode::Product { children: vec![] }
        } else {
            learn_node(table, &rows, &cols, 0, rng)
        };
        TableSpn {
            root,
            num_rows: table.num_rows() as f64,
        }
    }

    fn selectivity(&self, ranges: &HashMap<usize, (Value, Value)>) -> f64 {
        self.root.prob(ranges).clamp(0.0, 1.0)
    }
}

fn subset_column(table: &Table, col: usize, rows: &[u32]) -> Column {
    Column::data(
        table.columns[col].name.clone(),
        rows.iter()
            .map(|&r| table.columns[col].data[r as usize])
            .collect(),
    )
}

fn leaf(table: &Table, col: usize, rows: &[u32]) -> SpnNode {
    let column = subset_column(table, col, rows);
    SpnNode::Leaf {
        col,
        hist: EquiDepthHistogram::build(&column, LEAF_BUCKETS),
    }
}

fn learn_node(
    table: &Table,
    rows: &[u32],
    cols: &[usize],
    depth: usize,
    rng: &mut StdRng,
) -> SpnNode {
    if cols.len() == 1 {
        return leaf(table, cols[0], rows);
    }
    if depth >= MAX_DEPTH || rows.len() < MIN_ROWS {
        // Independence fallback: product of leaves.
        return SpnNode::Product {
            children: cols.iter().map(|&c| leaf(table, c, rows)).collect(),
        };
    }

    // Try a column split: group correlated columns via union-find.
    let groups = correlation_groups(table, rows, cols);
    if groups.len() > 1 {
        return SpnNode::Product {
            children: groups
                .into_iter()
                .map(|g| learn_node(table, rows, &g, depth + 1, rng))
                .collect(),
        };
    }

    // Row split: k-means with k = 2 on min-max normalized values.
    let points: Vec<Vec<f32>> = rows
        .iter()
        .map(|&r| {
            cols.iter()
                .map(|&c| {
                    let col = &table.columns[c];
                    let (lo, hi) = (col.min().unwrap_or(0), col.max().unwrap_or(0));
                    if hi <= lo {
                        0.0
                    } else {
                        ((col.data[r as usize] - lo) as f32) / ((hi - lo) as f32)
                    }
                })
                .collect()
        })
        .collect();
    let result = kmeans(&points, 2, 12, rng);
    let mut cluster_rows: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
    for (i, &r) in rows.iter().enumerate() {
        cluster_rows[result.assignments[i]].push(r);
    }
    if cluster_rows.iter().any(|c| c.is_empty()) {
        // Degenerate clustering: fall back to independence.
        return SpnNode::Product {
            children: cols.iter().map(|&c| leaf(table, c, rows)).collect(),
        };
    }
    let total = rows.len() as f64;
    let weights: Vec<f64> = cluster_rows
        .iter()
        .map(|c| c.len() as f64 / total)
        .collect();
    let children = cluster_rows
        .iter()
        .map(|cr| learn_node(table, cr, cols, depth + 1, rng))
        .collect();
    SpnNode::Sum { weights, children }
}

/// Partitions `cols` into groups of mutually correlated columns.
fn correlation_groups(table: &Table, rows: &[u32], cols: &[usize]) -> Vec<Vec<usize>> {
    let n = cols.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut Vec<usize>, x: usize) -> usize {
        if p[x] != x {
            let r = find(p, p[x]);
            p[x] = r;
        }
        p[x]
    }
    // Sample rows for the correlation test to stay cheap on big tables.
    let sample: Vec<u32> = if rows.len() > 2_000 {
        let step = rows.len() / 2_000;
        rows.iter().step_by(step.max(1)).copied().collect()
    } else {
        rows.to_vec()
    };
    let sub: Vec<Column> = cols
        .iter()
        .map(|&c| subset_column(table, c, &sample))
        .collect();
    for i in 0..n {
        for j in i + 1..n {
            let rho = ce_storage::stats::pearson(&sub[i], &sub[j]).abs();
            if rho > CORR_THRESHOLD {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, &col) in cols.iter().enumerate().take(n) {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(col);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort();
    out
}

/// Trained DeepDB model: one SPN per table plus the join index.
pub struct DeepDb {
    spns: Vec<TableSpn>,
    join_index: JoinIndex,
}

impl DeepDb {
    /// Learns the per-table SPNs and the join index.
    pub fn train(ctx: &TrainContext<'_>) -> Self {
        Self::learn(ctx.dataset, ctx.seed)
    }

    /// Direct data-driven construction.
    pub fn learn(ds: &Dataset, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdeeb);
        DeepDb {
            spns: ds
                .tables
                .iter()
                .map(|t| TableSpn::learn(t, &mut rng))
                .collect(),
            join_index: JoinIndex::build(ds),
        }
    }

    /// Total SPN node count (used by tests and the latency profile).
    pub fn total_nodes(&self) -> usize {
        self.spns.iter().map(|s| s.root.node_count()).sum()
    }

    fn table_selectivity(&self, query: &Query, table: usize) -> f64 {
        let ranges: HashMap<usize, (Value, Value)> = query
            .predicates_on(table)
            .into_iter()
            .map(|p| (p.column, (p.lo, p.hi)))
            .collect();
        if ranges.is_empty() {
            return 1.0;
        }
        self.spns[table].selectivity(&ranges)
    }
}

impl CardEstimator for DeepDb {
    fn kind(&self) -> ModelKind {
        ModelKind::DeepDb
    }

    fn estimate(&self, query: &Query) -> f64 {
        if query.tables.len() == 1 {
            let t = query.tables[0];
            return (self.spns[t].num_rows * self.table_selectivity(query, t)).max(1.0);
        }
        self.join_index
            .estimate(query, |t| self.table_selectivity(query, t))
            .max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec, SpecRange};
    use ce_storage::exec::query_cardinality;
    use ce_storage::Predicate;
    use ce_workload::metrics::qerror;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn handles_correlated_columns_better_than_independence() {
        // Perfectly correlated pair: the SPN's sum splits capture it.
        let mut rng = StdRng::seed_from_u64(141);
        let mut spec = DatasetSpec::small().single_table();
        spec.correlation = SpecRange { lo: 0.95, hi: 1.0 };
        spec.skew = SpecRange { lo: 0.0, hi: 0.1 };
        spec.columns = SpecRange { lo: 2, hi: 2 };
        spec.domain = SpecRange { lo: 60, hi: 60 };
        spec.rows = SpecRange {
            lo: 4_000,
            hi: 4_000,
        };
        let ds = generate_dataset("spn", &spec, &mut rng);
        let model = DeepDb::learn(&ds, 7);
        let pg = crate::postgres::PostgresEstimator::analyze(&ds);
        let mut spn_total = 0.0;
        let mut pg_total = 0.0;
        for i in 0..20 {
            let lo = 1 + (i % 4) * 10;
            let q = Query::single_table(
                0,
                vec![
                    Predicate {
                        table: 0,
                        column: 0,
                        lo,
                        hi: lo + 14,
                    },
                    Predicate {
                        table: 0,
                        column: 1,
                        lo,
                        hi: lo + 14,
                    },
                ],
            );
            let truth = query_cardinality(&ds, &q).unwrap() as f64;
            spn_total += qerror(model.estimate(&q), truth);
            pg_total += qerror(pg.estimate(&q), truth);
        }
        assert!(
            spn_total < pg_total,
            "SPN {spn_total} should beat independence {pg_total} under correlation"
        );
    }

    #[test]
    fn single_table_no_predicates_is_exact() {
        let mut rng = StdRng::seed_from_u64(142);
        let ds = generate_dataset("s", &DatasetSpec::small().single_table(), &mut rng);
        let model = DeepDb::learn(&ds, 1);
        let q = Query::single_table(0, vec![]);
        assert!((model.estimate(&q) - ds.tables[0].num_rows() as f64).abs() < 1e-6);
    }

    #[test]
    fn multi_table_estimates_are_sane() {
        let mut rng = StdRng::seed_from_u64(143);
        let ds = generate_dataset("m", &DatasetSpec::small().multi_table(), &mut rng);
        let model = DeepDb::learn(&ds, 2);
        let q = Query {
            tables: (0..ds.num_tables()).collect(),
            joins: ds.joins.iter().map(|j| (j.fk_table, j.pk_table)).collect(),
            predicates: vec![],
        };
        let truth = query_cardinality(&ds, &q).unwrap() as f64;
        let est = model.estimate(&q);
        assert!(
            (est - truth.max(1.0)).abs() < 1e-6,
            "no-predicate join is exact"
        );
        let _ = rng.gen::<u8>();
    }

    #[test]
    fn spn_builds_nontrivial_structure() {
        let mut rng = StdRng::seed_from_u64(144);
        let mut spec = DatasetSpec::small().single_table();
        spec.rows = SpecRange {
            lo: 3_000,
            hi: 3_000,
        };
        spec.columns = SpecRange { lo: 4, hi: 4 };
        let ds = generate_dataset("n", &spec, &mut rng);
        let model = DeepDb::learn(&ds, 3);
        assert!(model.total_nodes() > 3, "nodes = {}", model.total_nodes());
    }
}
