//! Deep autoregressive density model + progressive sampling — the substrate
//! shared by NeuroCard and UAE.
//!
//! The joint distribution over modeled columns is factorized as
//! `P(x) = Π_i P(x_i | x_<i>)`; each conditional is a small MLP taking the
//! one-hot binned prefix and emitting logits over the column's bins, trained
//! by maximum likelihood on data samples (for NeuroCard, samples of the full
//! join — see `ce-storage::exec::sample`). Range queries are answered with
//! Naru-style **progressive sampling**: per Monte-Carlo sample, walk the
//! columns, accumulate the conditional probability mass inside the predicate
//! range, and sample the next value from the range-restricted conditional.
//!
//! The many MLP invocations per estimate make this the *slowest* estimator
//! at inference — deliberately so: the paper's Table V measures NeuroCard/UAE
//! at 10-100× the latency of the lightweight query-driven models, and the
//! advisor must be able to observe that trade-off.

use ce_nn::loss::{softmax, softmax_cross_entropy};
use ce_nn::{Activation, Matrix, Mlp};
use ce_storage::Value;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Bins per modeled column.
pub const AR_BINS: usize = 24;
/// Hidden width of each conditional head.
const HID: usize = 48;
/// Training epochs over the sample set.
const EPOCHS: usize = 6;
/// Mini-batch size.
const BATCH: usize = 64;
/// Adam learning rate.
const LR: f32 = 3e-3;

/// Equi-width discretizer (shared helper).
#[derive(Debug, Clone)]
pub struct ArBinner {
    min: Value,
    max: Value,
    width: f64,
}

impl ArBinner {
    /// Builds a binner over the inclusive value range.
    pub fn new(min: Value, max: Value) -> Self {
        ArBinner {
            min,
            max,
            width: (((max - min + 1) as f64) / AR_BINS as f64).max(1e-9),
        }
    }

    /// Bin index of a value.
    pub fn bin_of(&self, v: Value) -> usize {
        (((v.clamp(self.min, self.max) - self.min) as f64 / self.width) as usize).min(AR_BINS - 1)
    }

    /// Fraction of bin `b` inside `[lo, hi]`.
    pub fn coverage(&self, b: usize, lo: Value, hi: Value) -> f64 {
        let b_lo = self.min as f64 + b as f64 * self.width;
        let b_hi = (b_lo + self.width).min(self.max as f64 + 1.0);
        let o_lo = b_lo.max(lo as f64);
        let o_hi = b_hi.min(hi as f64 + 1.0);
        ((o_hi - o_lo) / (b_hi - b_lo).max(1e-9)).clamp(0.0, 1.0)
    }
}

/// The trained autoregressive model.
pub struct ArModel {
    binners: Vec<ArBinner>,
    /// Conditional head per column; head 0 takes a constant scalar input.
    heads: Vec<Mlp>,
    /// Monte-Carlo samples per estimate.
    pub mc_samples: usize,
    rng: Mutex<StdRng>,
}

impl ArModel {
    /// Fits the model on `rows` (each row aligned with `bounds`).
    ///
    /// `bounds[i]` is the `(min, max)` of modeled column `i`.
    pub fn fit(
        rows: &[Vec<Value>],
        bounds: &[(Value, Value)],
        mc_samples: usize,
        seed: u64,
    ) -> Self {
        let ncols = bounds.len();
        let binners: Vec<ArBinner> = bounds
            .iter()
            .map(|&(lo, hi)| ArBinner::new(lo, hi))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa12);
        let mut heads: Vec<Mlp> = (0..ncols)
            .map(|i| {
                let input = if i == 0 { 1 } else { AR_BINS * i };
                Mlp::new(
                    &[input, HID, AR_BINS],
                    Activation::Relu,
                    Activation::Linear,
                    &mut rng,
                )
            })
            .collect();

        // Pre-bin all samples.
        let binned: Vec<Vec<usize>> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, &v)| binners[i].bin_of(v))
                    .collect()
            })
            .collect();

        let mut order: Vec<usize> = (0..binned.len()).collect();
        for _ in 0..EPOCHS {
            order.shuffle(&mut rng);
            for chunk in order.chunks(BATCH) {
                for (i, head) in heads.iter_mut().enumerate() {
                    let x = Matrix::from_rows(
                        chunk
                            .iter()
                            .map(|&s| prefix_features(&binned[s], i))
                            .collect(),
                    );
                    let labels: Vec<usize> = chunk.iter().map(|&s| binned[s][i]).collect();
                    let logits = head.forward(&x);
                    let (_, grad) = softmax_cross_entropy(&logits, &labels);
                    head.backward(&grad);
                    head.step(LR);
                }
            }
        }
        ArModel {
            binners,
            heads,
            mc_samples,
            rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x5eed)),
        }
    }

    /// Number of modeled columns.
    pub fn num_columns(&self) -> usize {
        self.heads.len()
    }

    /// Probability that a random row satisfies the per-column ranges
    /// (`None` = unconstrained), estimated by progressive sampling.
    pub fn prob(&self, ranges: &[Option<(Value, Value)>]) -> f64 {
        assert_eq!(ranges.len(), self.num_columns(), "range arity mismatch");
        if self.num_columns() == 0 {
            return 1.0;
        }
        let mut rng = self.rng.lock().expect("ar rng poisoned");
        let mut total = 0.0f64;
        for _ in 0..self.mc_samples {
            total += self.one_walk(ranges, &mut rng);
        }
        (total / self.mc_samples as f64).clamp(0.0, 1.0)
    }

    fn one_walk(&self, ranges: &[Option<(Value, Value)>], rng: &mut StdRng) -> f64 {
        let mut prefix_bins: Vec<usize> = Vec::with_capacity(self.num_columns());
        let mut prob = 1.0f64;
        for (i, range) in ranges.iter().enumerate().take(self.num_columns()) {
            let x = Matrix::row_vector(&prefix_features_usize(&prefix_bins, i));
            let logits = self.heads[i].infer(&x);
            let p = softmax(&logits);
            let dist = p.row(0);
            let bin = match *range {
                Some((lo, hi)) => {
                    // Restricted mass with fractional bin coverage.
                    let weights: Vec<f64> = (0..AR_BINS)
                        .map(|b| dist[b] as f64 * self.binners[i].coverage(b, lo, hi))
                        .collect();
                    let mass: f64 = weights.iter().sum();
                    if mass <= 1e-12 {
                        return 0.0;
                    }
                    prob *= mass;
                    sample_index(&weights, mass, rng)
                }
                None => {
                    let weights: Vec<f64> = dist.iter().map(|&v| v as f64).collect();
                    let mass: f64 = weights.iter().sum::<f64>().max(1e-12);
                    sample_index(&weights, mass, rng)
                }
            };
            prefix_bins.push(bin);
        }
        prob
    }
}

fn sample_index(weights: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

fn prefix_features(bins: &[usize], upto: usize) -> Vec<f32> {
    prefix_features_usize(&bins[..upto], upto)
}

fn prefix_features_usize(prefix: &[usize], upto: usize) -> Vec<f32> {
    if upto == 0 {
        return vec![1.0];
    }
    let mut f = vec![0.0f32; AR_BINS * upto];
    for (i, &b) in prefix.iter().take(upto).enumerate() {
        f[AR_BINS * i + b] = 1.0;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform single column: P(range) should track range width.
    #[test]
    fn learns_uniform_marginal() {
        let rows: Vec<Vec<Value>> = (0..2_000).map(|i| vec![(i % 100) + 1]).collect();
        let model = ArModel::fit(&rows, &[(1, 100)], 128, 9);
        let half = model.prob(&[Some((1, 50))]);
        assert!((half - 0.5).abs() < 0.1, "half = {half}");
        let all = model.prob(&[Some((1, 100))]);
        assert!(all > 0.95, "all = {all}");
        let none = model.prob(&[None]);
        assert!((none - 1.0).abs() < 1e-9);
    }

    /// Perfectly dependent pair: P(a in R, b in R) ≈ P(a in R), which
    /// independence would square.
    #[test]
    fn captures_dependence_between_columns() {
        let rows: Vec<Vec<Value>> = (0..3_000)
            .map(|i| {
                let v = (i % 80) + 1;
                vec![v, v]
            })
            .collect();
        let model = ArModel::fit(&rows, &[(1, 80), (1, 80)], 256, 10);
        let joint = model.prob(&[Some((1, 20)), Some((1, 20))]);
        // True answer 0.25; independence would give 0.0625.
        assert!(joint > 0.15, "joint = {joint}");
        assert!(joint < 0.40, "joint = {joint}");
    }

    #[test]
    fn skewed_marginal_reflected() {
        // 90% of mass at value 1.
        let rows: Vec<Vec<Value>> = (0..2_000)
            .map(|i| vec![if i % 10 == 0 { 50 } else { 1 }])
            .collect();
        let model = ArModel::fit(&rows, &[(1, 64)], 128, 11);
        let head = model.prob(&[Some((1, 4))]);
        assert!(head > 0.7, "head = {head}");
    }

    #[test]
    fn empty_model_probability_one() {
        let model = ArModel::fit(&[], &[], 16, 12);
        assert_eq!(model.prob(&[]), 1.0);
    }
}
