//! Join handling for the per-table data-driven models (DeepDB, BayesCard).
//!
//! DeepDB answers join queries through precomputed fanout statistics; we
//! reproduce the same architecture: at training time the exact full-join
//! cardinality of **every connected subtree** of the dataset's join graph is
//! computed once (cheap — the join graph has at most 5 tables), and at
//! inference a join query is estimated as
//!
//! ```text
//! card(Q) ≈ |full join of Q's subtree| · Π_t sel_t(preds on t)
//! ```
//!
//! i.e. per-table selectivities are assumed independent *within the join
//! distribution*. This is exactly the regime in which the paper observes
//! data-driven models losing to query-driven ones on multi-table datasets
//! (Example 1) — the error grows when predicate columns correlate with join
//! fanout.

use ce_storage::exec::query_cardinality;
use ce_storage::{Dataset, Query};
use std::collections::HashMap;

/// Precomputed full-join sizes of every connected subtree.
#[derive(Debug, Clone)]
pub struct JoinIndex {
    /// Key: sorted table-index set. Value: exact full-join cardinality.
    sizes: HashMap<Vec<usize>, u64>,
}

impl JoinIndex {
    /// Builds the index by enumerating connected subsets of the join graph.
    pub fn build(ds: &Dataset) -> Self {
        let n = ds.num_tables();
        let mut sizes = HashMap::new();
        // Enumerate all non-empty subsets (n ≤ 5 in the paper's generator;
        // cap at 12 tables to keep this bounded for exotic schemas).
        assert!(
            n <= 20,
            "join index enumeration not intended for >20 tables"
        );
        for mask in 1u32..(1 << n) {
            let tables: Vec<usize> = (0..n).filter(|&t| mask & (1 << t) != 0).collect();
            let Some(joins) = spanning_joins(ds, &tables) else {
                continue; // not connected
            };
            let q = Query {
                tables: tables.clone(),
                joins,
                predicates: vec![],
            };
            if let Ok(card) = query_cardinality(ds, &q) {
                sizes.insert(tables, card);
            }
        }
        JoinIndex { sizes }
    }

    /// Full-join size of the query's table set, if the set is connected.
    pub fn full_join_size(&self, query: &Query) -> Option<u64> {
        let mut key = query.tables.clone();
        key.sort_unstable();
        key.dedup();
        self.sizes.get(&key).copied()
    }

    /// Combines per-table selectivities into a join-cardinality estimate.
    pub fn estimate(&self, query: &Query, sel_of_table: impl Fn(usize) -> f64) -> f64 {
        let full = self.full_join_size(query).unwrap_or(0) as f64;
        let mut sel = 1.0f64;
        for &t in &query.tables {
            sel *= sel_of_table(t).clamp(0.0, 1.0);
        }
        (full * sel).max(0.0)
    }

    /// Number of indexed subtrees.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True if nothing was indexed (empty dataset).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }
}

/// Returns the join edges connecting `tables` if they form a connected
/// subtree of the dataset join graph, else `None`.
fn spanning_joins(ds: &Dataset, tables: &[usize]) -> Option<Vec<(usize, usize)>> {
    if tables.len() <= 1 {
        return Some(Vec::new());
    }
    let mut joins = Vec::new();
    let mut reached = vec![tables[0]];
    let mut frontier = true;
    while frontier {
        frontier = false;
        for e in &ds.joins {
            let (a, b) = (e.fk_table, e.pk_table);
            if !tables.contains(&a) || !tables.contains(&b) {
                continue;
            }
            let has_a = reached.contains(&a);
            let has_b = reached.contains(&b);
            if has_a != has_b {
                reached.push(if has_a { b } else { a });
                joins.push((a, b));
                frontier = true;
            }
        }
    }
    if reached.len() == tables.len() {
        Some(joins)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn indexes_all_connected_subtrees() {
        let mut rng = StdRng::seed_from_u64(121);
        let ds = generate_dataset("ji", &DatasetSpec::small().multi_table(), &mut rng);
        let idx = JoinIndex::build(&ds);
        // All singletons are connected.
        assert!(idx.len() >= ds.num_tables());
        for t in 0..ds.num_tables() {
            let q = Query::single_table(t, vec![]);
            assert_eq!(
                idx.full_join_size(&q).unwrap(),
                ds.tables[t].num_rows() as u64
            );
        }
        // The full set is connected by construction.
        let q = Query {
            tables: (0..ds.num_tables()).collect(),
            joins: ds.joins.iter().map(|j| (j.fk_table, j.pk_table)).collect(),
            predicates: vec![],
        };
        let full = idx.full_join_size(&q).unwrap();
        assert_eq!(full, query_cardinality(&ds, &q).unwrap());
    }

    #[test]
    fn estimate_multiplies_selectivities() {
        let mut rng = StdRng::seed_from_u64(122);
        let ds = generate_dataset("je", &DatasetSpec::small().multi_table(), &mut rng);
        let idx = JoinIndex::build(&ds);
        let q = Query {
            tables: (0..ds.num_tables()).collect(),
            joins: ds.joins.iter().map(|j| (j.fk_table, j.pk_table)).collect(),
            predicates: vec![],
        };
        let full = idx.full_join_size(&q).unwrap() as f64;
        let est = idx.estimate(&q, |_| 0.5);
        let expect = full * 0.5f64.powi(ds.num_tables() as i32);
        assert!((est - expect).abs() < 1e-6);
        // Selectivity 1 reproduces the full size.
        assert!((idx.estimate(&q, |_| 1.0) - full).abs() < 1e-9);
    }
}
