//! Ensemble baseline: the paper's comparison method (8) — "takes the
//! weighted average estimation of all the CE models (the weight is
//! proportional to their performance on the training datasets)".
//!
//! We combine estimates as a weighted average in log space (a weighted
//! geometric mean), the natural averaging domain for cardinalities, with
//! weights proportional to each member's inverse mean Q-error on the
//! training workload. To avoid doubling the cost of every testbed labeling
//! run, the ensemble trains the non-autoregressive members (MSCN, LW-NN,
//! LW-XGB, DeepDB, BayesCard, Postgres); the AR pair's contribution is the
//! dominant training cost and its omission is noted in DESIGN.md.

use crate::traits::{build_model, CardEstimator, ModelKind, TrainContext};
use ce_storage::Query;
use ce_workload::metrics::mean_qerror;

/// Member models of the ensemble.
const MEMBERS: [ModelKind; 6] = [
    ModelKind::Mscn,
    ModelKind::LwNn,
    ModelKind::LwXgb,
    ModelKind::DeepDb,
    ModelKind::BayesCard,
    ModelKind::Postgres,
];

/// Trained ensemble.
pub struct Ensemble {
    members: Vec<Box<dyn CardEstimator>>,
    weights: Vec<f64>,
}

impl Ensemble {
    /// Trains all members and weights them by training-set performance.
    pub fn train(ctx: &TrainContext<'_>) -> Self {
        let members: Vec<Box<dyn CardEstimator>> =
            MEMBERS.iter().map(|&k| build_model(k, ctx)).collect();
        // Weight ∝ 1 / mean Q-error on (a subsample of) the training set.
        let sample: Vec<_> = ctx.train_queries.iter().take(200).collect();
        let truths: Vec<f64> = sample.iter().map(|lq| lq.true_card as f64).collect();
        let weights: Vec<f64> = members
            .iter()
            .map(|m| {
                let est: Vec<f64> = sample.iter().map(|lq| m.estimate(&lq.query)).collect();
                1.0 / mean_qerror(&est, &truths).max(1.0)
            })
            .collect();
        let z: f64 = weights.iter().sum::<f64>().max(1e-12);
        let weights = weights.into_iter().map(|w| w / z).collect();
        Ensemble { members, weights }
    }

    /// Normalized member weights (for inspection).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl CardEstimator for Ensemble {
    fn kind(&self) -> ModelKind {
        ModelKind::Ensemble
    }

    fn estimate(&self, query: &Query) -> f64 {
        let mut log_est = 0.0f64;
        for (m, &w) in self.members.iter().zip(&self.weights) {
            log_est += w * m.estimate(query).max(1.0).ln();
        }
        log_est.exp().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use ce_workload::{generate_workload, label_workload, metrics::mean_qerror, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_combination_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(181);
        let ds = generate_dataset("en", &DatasetSpec::small().single_table(), &mut rng);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 250,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        let labeled = label_workload(&ds, &queries).unwrap();
        let (train, test) = ce_workload::label::train_test_split(labeled, 0.8);
        let model = Ensemble::train(&TrainContext {
            dataset: &ds,
            train_queries: &train,
            seed: 21,
        });
        assert_eq!(model.weights().len(), MEMBERS.len());
        let wsum: f64 = model.weights().iter().sum();
        assert!((wsum - 1.0).abs() < 1e-9, "weights normalized");
        let est: Vec<f64> = test.iter().map(|lq| model.estimate(&lq.query)).collect();
        let tru: Vec<f64> = test.iter().map(|lq| lq.true_card as f64).collect();
        let q = mean_qerror(&est, &tru);
        assert!(q < 40.0, "mean q-error {q}");
    }
}
