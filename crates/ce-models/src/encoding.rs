//! Query featurization shared by the query-driven models.
//!
//! The schema snapshot ([`SchemaEncoder`]) is captured at training time so
//! inference never touches base data. Two encodings are provided:
//!
//! * a **flat encoding** (LW-NN / LW-XGB / UAE calibration): table one-hots
//!   plus `[has_pred, lo, hi]` per column, ranges normalized to `[0, 1]` —
//!   the "sequence of selection ranges" of the LW paper;
//! * a **set encoding** (MSCN): separate table / join / predicate feature
//!   sets, each later average-pooled by its own small MLP.
//!
//! Cardinalities are regressed in normalized log space: `y =
//! ln(1+card) / ln(1+card_max)` with `card_max` the product of table sizes —
//! the same trick MSCN uses so a sigmoid output covers the label range.

use ce_storage::{Dataset, Query, Value};
use serde::{Deserialize, Serialize};

/// Immutable schema snapshot + normalization constants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemaEncoder {
    /// Number of tables.
    pub num_tables: usize,
    /// Per-table row counts.
    pub table_rows: Vec<usize>,
    /// `(table, column)` of every *data* column, defining feature order.
    pub data_columns: Vec<(usize, usize)>,
    /// Per data column `(min, max)` captured at training time.
    pub column_bounds: Vec<(Value, Value)>,
    /// Join edges `(fk_table, pk_table)` in dataset order.
    pub join_edges: Vec<(usize, usize)>,
    /// `ln(1 + product of all table row counts)` — the log-card normalizer.
    pub log_card_max: f64,
}

impl SchemaEncoder {
    /// Captures the schema of `ds`.
    pub fn capture(ds: &Dataset) -> Self {
        let mut data_columns = Vec::new();
        let mut column_bounds = Vec::new();
        for (t, table) in ds.tables.iter().enumerate() {
            for c in table.data_column_indices() {
                data_columns.push((t, c));
                let col = &table.columns[c];
                column_bounds.push((col.min().unwrap_or(0), col.max().unwrap_or(0)));
            }
        }
        let mut log_card_max = 0.0f64;
        for t in &ds.tables {
            log_card_max += (t.num_rows() as f64 + 1.0).ln();
        }
        SchemaEncoder {
            num_tables: ds.num_tables(),
            table_rows: ds.tables.iter().map(|t| t.num_rows()).collect(),
            data_columns,
            column_bounds,
            join_edges: ds.joins.iter().map(|j| (j.fk_table, j.pk_table)).collect(),
            log_card_max: log_card_max.max(1.0),
        }
    }

    /// Index of `(table, column)` in the flat feature order.
    pub fn column_slot(&self, table: usize, column: usize) -> Option<usize> {
        self.data_columns
            .iter()
            .position(|&(t, c)| t == table && c == column)
    }

    /// Flat feature dimension: `num_tables + 3·|columns| + 1` (join count).
    pub fn flat_dim(&self) -> usize {
        self.num_tables + 3 * self.data_columns.len() + 1
    }

    /// Normalizes a raw value into `[0, 1]` against column `slot`'s bounds.
    fn norm(&self, slot: usize, v: Value) -> f32 {
        let (lo, hi) = self.column_bounds[slot];
        if hi <= lo {
            return 0.0;
        }
        (((v - lo) as f64 / (hi - lo) as f64).clamp(0.0, 1.0)) as f32
    }

    /// Flat encoding of a query.
    pub fn encode_flat(&self, query: &Query) -> Vec<f32> {
        let mut out = vec![0.0f32; self.flat_dim()];
        for &t in &query.tables {
            if t < self.num_tables {
                out[t] = 1.0;
            }
        }
        let base = self.num_tables;
        // Default ranges: [0,1] with has_pred = 0 for untouched columns.
        for slot in 0..self.data_columns.len() {
            out[base + 3 * slot + 1] = 0.0; // lo
            out[base + 3 * slot + 2] = 1.0; // hi
        }
        for p in &query.predicates {
            if let Some(slot) = self.column_slot(p.table, p.column) {
                out[base + 3 * slot] = 1.0;
                out[base + 3 * slot + 1] = self.norm(slot, p.lo);
                out[base + 3 * slot + 2] = self.norm(slot, p.hi);
            }
        }
        let jn = &mut out[self.flat_dim() - 1];
        *jn = query.joins.len() as f32 / self.num_tables.max(1) as f32;
        out
    }

    /// Normalized log-cardinality label in `[0, 1]`.
    pub fn normalize_card(&self, card: f64) -> f32 {
        (((card.max(0.0) + 1.0).ln()) / self.log_card_max).clamp(0.0, 1.0) as f32
    }

    /// Inverse of [`normalize_card`](Self::normalize_card).
    pub fn denormalize_card(&self, y: f32) -> f64 {
        ((y as f64).clamp(0.0, 1.0) * self.log_card_max).exp() - 1.0
    }
}

/// MSCN-style set encoding of one query.
#[derive(Debug, Clone)]
pub struct SetEncoding {
    /// One feature row per joined table: `[one-hot table | log(rows)/20]`.
    pub tables: Vec<Vec<f32>>,
    /// One feature row per join edge: one-hot over the dataset's edges.
    pub joins: Vec<Vec<f32>>,
    /// One feature row per predicate: `[one-hot column | lo | hi]`.
    pub predicates: Vec<Vec<f32>>,
}

impl SchemaEncoder {
    /// Per-element feature width of the table set.
    pub fn table_feat_dim(&self) -> usize {
        self.num_tables + 1
    }

    /// Per-element feature width of the join set (≥ 1 even without joins).
    pub fn join_feat_dim(&self) -> usize {
        self.join_edges.len().max(1)
    }

    /// Per-element feature width of the predicate set.
    pub fn pred_feat_dim(&self) -> usize {
        self.data_columns.len() + 2
    }

    /// Builds the MSCN set encoding for `query`.
    pub fn encode_sets(&self, query: &Query) -> SetEncoding {
        let tables = query
            .tables
            .iter()
            .map(|&t| {
                let mut f = vec![0.0f32; self.table_feat_dim()];
                if t < self.num_tables {
                    f[t] = 1.0;
                    f[self.num_tables] = ((self.table_rows[t] as f32) + 1.0).ln() / 20.0;
                }
                f
            })
            .collect();
        let joins = query
            .joins
            .iter()
            .map(|&(a, b)| {
                let mut f = vec![0.0f32; self.join_feat_dim()];
                if let Some(i) = self.join_edges.iter().position(|&e| e == (a, b)) {
                    f[i] = 1.0;
                }
                f
            })
            .collect();
        let predicates = query
            .predicates
            .iter()
            .filter_map(|p| {
                let slot = self.column_slot(p.table, p.column)?;
                let mut f = vec![0.0f32; self.pred_feat_dim()];
                f[slot] = 1.0;
                f[self.data_columns.len()] = self.norm(slot, p.lo);
                f[self.data_columns.len() + 1] = self.norm(slot, p.hi);
                Some(f)
            })
            .collect();
        SetEncoding {
            tables,
            joins,
            predicates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use ce_storage::Predicate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Dataset, SchemaEncoder) {
        let mut rng = StdRng::seed_from_u64(81);
        let ds = generate_dataset("e", &DatasetSpec::small().multi_table(), &mut rng);
        let enc = SchemaEncoder::capture(&ds);
        (ds, enc)
    }

    #[test]
    fn flat_dim_consistent() {
        let (_, enc) = setup();
        assert_eq!(
            enc.flat_dim(),
            enc.num_tables + 3 * enc.data_columns.len() + 1
        );
    }

    #[test]
    fn flat_encoding_marks_tables_and_predicates() {
        let (ds, enc) = setup();
        let (t, c) = enc.data_columns[0];
        let (lo, hi) = enc.column_bounds[0];
        let q = Query::single_table(
            t,
            vec![Predicate {
                table: t,
                column: c,
                lo,
                hi,
            }],
        );
        let f = enc.encode_flat(&q);
        assert_eq!(f.len(), enc.flat_dim());
        assert_eq!(f[t], 1.0, "table one-hot set");
        let base = enc.num_tables;
        assert_eq!(f[base], 1.0, "has_pred set");
        assert_eq!(f[base + 1], 0.0, "full-range lo normalizes to 0");
        assert_eq!(f[base + 2], 1.0, "full-range hi normalizes to 1");
        let _ = ds;
    }

    #[test]
    fn card_normalization_roundtrip() {
        let (_, enc) = setup();
        for &card in &[0.0, 1.0, 10.0, 1e4] {
            let y = enc.normalize_card(card);
            let back = enc.denormalize_card(y);
            let q = (back.max(1.0) / card.max(1.0)).max(card.max(1.0) / back.max(1.0));
            assert!(q < 1.01, "roundtrip q-error {q} at {card}");
        }
        assert!(enc.normalize_card(0.0) >= 0.0);
        assert!(enc.normalize_card(f64::MAX) <= 1.0);
    }

    #[test]
    fn set_encoding_shapes() {
        let (ds, enc) = setup();
        let q = Query {
            tables: (0..ds.num_tables()).collect(),
            joins: ds.joins.iter().map(|j| (j.fk_table, j.pk_table)).collect(),
            predicates: vec![],
        };
        let s = enc.encode_sets(&q);
        assert_eq!(s.tables.len(), ds.num_tables());
        assert_eq!(s.joins.len(), ds.joins.len());
        assert!(s.predicates.is_empty());
        assert!(s.tables.iter().all(|f| f.len() == enc.table_feat_dim()));
        assert!(s.joins.iter().all(|f| f.len() == enc.join_feat_dim()));
    }
}
