//! MSCN — multi-set convolutional network (Kipf et al., CIDR 2019).
//!
//! Three per-element MLPs embed the table set, the join set and the
//! predicate set; each set is average-pooled; the pooled embeddings are
//! concatenated and fed through an output MLP with sigmoid head regressing
//! the normalized log-cardinality. Gradients flow through the pooling back
//! into the set MLPs (the pooled mean distributes the incoming gradient
//! equally over set elements).

use crate::encoding::SchemaEncoder;
use crate::traits::{CardEstimator, ModelKind, TrainContext};
use ce_nn::loss::mse_loss;
use ce_nn::{Activation, Matrix, Mlp};
use ce_storage::{Query, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hidden width of every sub-network.
const HID: usize = 32;

/// Materialized-sample size per table (the bitmap feature of the original
/// MSCN: each query encodes which sample rows satisfy its per-table
/// predicates; selective queries underflow to an all-zero bitmap, which is
/// MSCN's characteristic failure mode).
const SAMPLE_BITS: usize = 96;

/// Trained MSCN model.
pub struct Mscn {
    encoder: SchemaEncoder,
    table_net: Mlp,
    join_net: Mlp,
    pred_net: Mlp,
    out_net: Mlp,
    /// Per table: `SAMPLE_BITS` sampled rows × all columns (by column idx).
    samples: Vec<Vec<Vec<Value>>>,
}

impl Mscn {
    /// Bitmap of sample rows of `table` satisfying the query's predicates.
    fn bitmap(&self, query: &Query, table: usize) -> Vec<f32> {
        let preds = query.predicates_on(table);
        self.samples[table]
            .iter()
            .map(|row| {
                let ok = preds.iter().all(|p| p.matches(row[p.column]));
                if ok {
                    1.0
                } else {
                    0.0
                }
            })
            .chain(std::iter::repeat(0.0))
            .take(SAMPLE_BITS)
            .collect()
    }

    /// Table-set features with the sample bitmap appended.
    fn table_features(&self, query: &Query) -> Vec<Vec<f32>> {
        let sets = self.encoder.encode_sets(query);
        sets.tables
            .iter()
            .zip(&query.tables)
            .map(|(base, &t)| {
                let mut f = base.clone();
                f.extend(self.bitmap(query, t));
                f
            })
            .collect()
    }
}

impl Mscn {
    const EPOCHS: usize = 30;
    const LR: f32 = 2e-3;

    /// Trains from the labeled query workload.
    pub fn train(ctx: &TrainContext<'_>) -> Self {
        let encoder = SchemaEncoder::capture(ctx.dataset);
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x35c2);
        // Materialize per-table samples for the bitmap feature.
        let samples: Vec<Vec<Vec<Value>>> = ctx
            .dataset
            .tables
            .iter()
            .map(|t| {
                let n = t.num_rows();
                (0..SAMPLE_BITS.min(n))
                    .map(|_| {
                        let r = rand::Rng::gen_range(&mut rng, 0..n);
                        t.columns.iter().map(|c| c.data[r]).collect()
                    })
                    .collect()
            })
            .collect();
        let mut model = Mscn {
            samples,
            table_net: Mlp::new(
                &[encoder.table_feat_dim() + SAMPLE_BITS, HID, HID],
                Activation::Relu,
                Activation::Relu,
                &mut rng,
            ),
            join_net: Mlp::new(
                &[encoder.join_feat_dim(), HID, HID],
                Activation::Relu,
                Activation::Relu,
                &mut rng,
            ),
            pred_net: Mlp::new(
                &[encoder.pred_feat_dim(), HID, HID],
                Activation::Relu,
                Activation::Relu,
                &mut rng,
            ),
            out_net: Mlp::new(
                &[3 * HID, HID, 1],
                Activation::Relu,
                Activation::Sigmoid,
                &mut rng,
            ),
            encoder,
        };
        let labels: Vec<f32> = ctx
            .train_queries
            .iter()
            .map(|lq| model.encoder.normalize_card(lq.true_card as f64))
            .collect();
        let mut order: Vec<usize> = (0..ctx.train_queries.len()).collect();
        for _ in 0..Self::EPOCHS {
            order.shuffle(&mut rng);
            for &i in &order {
                model.train_one(&ctx.train_queries[i].query, labels[i]);
            }
        }
        model
    }

    /// Pools a set through `net` (training mode); empty sets pool to zeros.
    fn pool(net: &mut Mlp, set: &[Vec<f32>]) -> (Matrix, usize) {
        if set.is_empty() {
            return (Matrix::zeros(1, HID), 0);
        }
        let x = Matrix::from_rows(set.to_vec());
        let h = net.forward(&x);
        (h.mean_rows(), set.len())
    }

    /// One SGD step on a single query.
    fn train_one(&mut self, query: &Query, label: f32) {
        let table_feats = self.table_features(query);
        let sets = self.encoder.encode_sets(query);
        let (pt, nt) = Self::pool(&mut self.table_net, &table_feats);
        let (pj, nj) = Self::pool(&mut self.join_net, &sets.joins);
        let (pp, np) = Self::pool(&mut self.pred_net, &sets.predicates);
        let concat = pt.hconcat(&pj).hconcat(&pp);
        let pred = self.out_net.forward(&concat);
        let (_, grad) = mse_loss(&pred, &Matrix::row_vector(&[label]));
        let gin = self.out_net.backward(&grad);
        // Split the concat gradient back to the three pooled embeddings and
        // distribute over set elements (mean pooling → grad / n each).
        let g = gin.row(0);
        if nt > 0 {
            let mut ge = Matrix::zeros(nt, HID);
            for r in 0..nt {
                let row = ge.row_mut(r);
                for (dst, &src) in row.iter_mut().zip(&g[0..HID]) {
                    *dst = src / nt as f32;
                }
            }
            self.table_net.backward(&ge);
        }
        if nj > 0 {
            let mut ge = Matrix::zeros(nj, HID);
            for r in 0..nj {
                let row = ge.row_mut(r);
                for (dst, &src) in row.iter_mut().zip(&g[HID..HID + HID]) {
                    *dst = src / nj as f32;
                }
            }
            self.join_net.backward(&ge);
        }
        if np > 0 {
            let mut ge = Matrix::zeros(np, HID);
            for r in 0..np {
                let row = ge.row_mut(r);
                for (dst, &src) in row.iter_mut().zip(&g[2 * HID..2 * HID + HID]) {
                    *dst = src / np as f32;
                }
            }
            self.pred_net.backward(&ge);
        }
        self.out_net.step(Self::LR);
        self.table_net.step(Self::LR);
        self.join_net.step(Self::LR);
        self.pred_net.step(Self::LR);
    }

    fn pool_infer(net: &Mlp, set: &[Vec<f32>]) -> Matrix {
        if set.is_empty() {
            return Matrix::zeros(1, HID);
        }
        net.infer(&Matrix::from_rows(set.to_vec())).mean_rows()
    }
}

impl CardEstimator for Mscn {
    fn kind(&self) -> ModelKind {
        ModelKind::Mscn
    }

    fn estimate(&self, query: &Query) -> f64 {
        let table_feats = self.table_features(query);
        let sets = self.encoder.encode_sets(query);
        let pt = Self::pool_infer(&self.table_net, &table_feats);
        let pj = Self::pool_infer(&self.join_net, &sets.joins);
        let pp = Self::pool_infer(&self.pred_net, &sets.predicates);
        let concat = pt.hconcat(&pj).hconcat(&pp);
        let y = self.out_net.infer(&concat);
        self.encoder.denormalize_card(y.data[0]).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use ce_workload::{generate_workload, label_workload, metrics::mean_qerror, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_multi_table_workload() {
        let mut rng = StdRng::seed_from_u64(101);
        let ds = generate_dataset("m", &DatasetSpec::small().multi_table(), &mut rng);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 400,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        let labeled = label_workload(&ds, &queries).unwrap();
        let (train, test) = ce_workload::label::train_test_split(labeled, 0.8);
        let model = Mscn::train(&TrainContext {
            dataset: &ds,
            train_queries: &train,
            seed: 2,
        });
        let est: Vec<f64> = test.iter().map(|lq| model.estimate(&lq.query)).collect();
        let tru: Vec<f64> = test.iter().map(|lq| lq.true_card as f64).collect();
        let q = mean_qerror(&est, &tru);
        assert!(q < 50.0, "mean q-error {q}");
        assert!(est.iter().all(|&e| e.is_finite() && e >= 1.0));
    }
}
