//! # ce-workload — SPJ workload generation and ground-truth labeling
//!
//! The paper trains query-driven CE models on 9,000 labeled SPJ queries and
//! tests every model on 1,000 more (§VII-A), plus the CEB-IMDB templates
//! with `GROUP BY` / `LIKE` removed. This crate provides:
//!
//! * [`gen`]: randomized SPJ query generation over any dataset's join graph
//!   (connected subtree + conjunctive range predicates on non-key columns);
//! * [`label`]: exact labeling through the storage engine's Yannakakis
//!   counter;
//! * [`ceb`]: the CEB-like template workload used by Table III;
//! * [`metrics`]: Q-error (§II, metric 1).

pub mod ceb;
pub mod gen;
pub mod label;
pub mod metrics;

pub use gen::{generate_workload, WorkloadSpec};
pub use label::{label_workload, LabeledQuery};
pub use metrics::qerror;
