//! Randomized SPJ query generation.
//!
//! Each query joins a random connected subtree of the dataset's join graph
//! (1..=`max_tables` tables) and applies 0..=`max_predicates_per_table`
//! closed range predicates to randomly chosen non-key columns, with range
//! centers drawn from the actual data so queries are rarely empty — the
//! standard recipe of the NeuroCard/Naru workloads the paper borrows.

use ce_storage::{Dataset, Predicate, Query, Value};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Workload generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Minimum number of joined tables per query (clamped to the dataset).
    pub min_tables: usize,
    /// Maximum number of joined tables per query.
    pub max_tables: usize,
    /// Minimum predicates per query (over all tables).
    pub min_predicates: usize,
    /// Maximum predicates per joined table.
    pub max_predicates_per_table: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            num_queries: 100,
            min_tables: 1,
            max_tables: 5,
            min_predicates: 1,
            max_predicates_per_table: 3,
        }
    }
}

/// Generates `spec.num_queries` valid queries over `ds`.
pub fn generate_workload<R: Rng>(ds: &Dataset, spec: &WorkloadSpec, rng: &mut R) -> Vec<Query> {
    (0..spec.num_queries)
        .map(|_| generate_query(ds, spec, rng))
        .collect()
}

/// Generates one query.
pub fn generate_query<R: Rng>(ds: &Dataset, spec: &WorkloadSpec, rng: &mut R) -> Query {
    let hi = spec.max_tables.min(ds.num_tables()).max(1);
    let lo = spec.min_tables.clamp(1, hi);
    let want = rng.gen_range(lo..=hi);
    // Grow a random connected subtree.
    let start = rng.gen_range(0..ds.num_tables());
    let mut tables = vec![start];
    let mut joins: Vec<(usize, usize)> = Vec::new();
    while tables.len() < want {
        let mut frontier: Vec<(usize, usize)> = Vec::new();
        for &t in &tables {
            for e in ds.joins_of(t) {
                let other = if e.fk_table == t {
                    e.pk_table
                } else {
                    e.fk_table
                };
                if !tables.contains(&other) {
                    frontier.push((e.fk_table, e.pk_table));
                }
            }
        }
        let Some(&(fk, pk)) = frontier.as_slice().choose(rng) else {
            break; // component exhausted
        };
        let newcomer = if tables.contains(&fk) { pk } else { fk };
        tables.push(newcomer);
        joins.push((fk, pk));
    }

    // Predicates on non-key columns with data-centered ranges.
    let mut predicates = Vec::new();
    for &t in &tables {
        let table = &ds.tables[t];
        let mut cols = table.data_column_indices();
        if cols.is_empty() {
            continue;
        }
        cols.shuffle(rng);
        let n_preds = rng.gen_range(0..=spec.max_predicates_per_table.min(cols.len()));
        for &c in cols.iter().take(n_preds) {
            predicates.push(random_predicate(ds, t, c, rng));
        }
    }
    // Honor the minimum predicate count by force-adding to random tables.
    let mut guard = 0;
    while predicates.len() < spec.min_predicates && guard < 32 {
        guard += 1;
        let &t = tables.as_slice().choose(rng).expect("tables nonempty");
        let cols = ds.tables[t].data_column_indices();
        if let Some(&c) = cols.as_slice().choose(rng) {
            predicates.push(random_predicate(ds, t, c, rng));
        }
    }

    Query {
        tables,
        joins,
        predicates,
    }
}

fn random_predicate<R: Rng>(ds: &Dataset, table: usize, col: usize, rng: &mut R) -> Predicate {
    let column = &ds.tables[table].columns[col];
    let lo_v = column.min().unwrap_or(0);
    let hi_v = column.max().unwrap_or(0);
    // Center on an existing row value; width is a random fraction of the range.
    let center = if column.is_empty() {
        lo_v
    } else {
        column.data[rng.gen_range(0..column.len())]
    };
    let span = ((hi_v - lo_v) as f64).max(1.0);
    let width = (rng.gen::<f64>().powi(2) * span * 0.5) as Value;
    Predicate {
        table,
        column: col,
        lo: (center - width).max(lo_v),
        hi: (center + width).min(hi_v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_dataset("w", &DatasetSpec::small().multi_table(), &mut rng)
    }

    #[test]
    fn all_generated_queries_validate() {
        let ds = dataset(51);
        let mut rng = StdRng::seed_from_u64(52);
        let spec = WorkloadSpec {
            num_queries: 200,
            ..WorkloadSpec::default()
        };
        for q in generate_workload(&ds, &spec, &mut rng) {
            q.validate(&ds).unwrap();
        }
    }

    #[test]
    fn min_predicates_respected() {
        let ds = dataset(53);
        let mut rng = StdRng::seed_from_u64(54);
        let spec = WorkloadSpec {
            num_queries: 50,
            min_predicates: 2,
            ..WorkloadSpec::default()
        };
        for q in generate_workload(&ds, &spec, &mut rng) {
            assert!(q.predicates.len() >= 2);
        }
    }

    #[test]
    fn single_table_dataset_yields_single_table_queries() {
        let mut rng = StdRng::seed_from_u64(55);
        let ds = generate_dataset("s", &DatasetSpec::small().single_table(), &mut rng);
        let spec = WorkloadSpec::default();
        for q in generate_workload(&ds, &spec, &mut rng) {
            assert_eq!(q.tables, vec![0]);
            assert!(q.joins.is_empty());
        }
    }

    #[test]
    fn predicates_only_touch_data_columns() {
        let ds = dataset(56);
        let mut rng = StdRng::seed_from_u64(57);
        let spec = WorkloadSpec {
            num_queries: 100,
            ..WorkloadSpec::default()
        };
        for q in generate_workload(&ds, &spec, &mut rng) {
            for p in &q.predicates {
                assert!(!ds.tables[p.table].columns[p.column].is_key());
            }
        }
    }
}
