//! CEB-like template workload (Table III).
//!
//! The paper uses "all the query templates" of the CEB-IMDB benchmark but
//! removes `GROUP BY` and `LIKE` predicates, leaving SPJ templates. We
//! reproduce the structure: a template fixes the joined-table subtree and
//! the predicate columns; each instantiation draws fresh literal ranges.
//! Templates are derived from the dataset's own join graph so the module
//! works against the IMDB-like simulator (or any other dataset).

use crate::gen::WorkloadSpec;
use ce_storage::{Dataset, Predicate, Query, Value};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A query template: joined tables + predicate columns, without literals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Template identifier (e.g. `"1a"`).
    pub id: String,
    /// Joined tables.
    pub tables: Vec<usize>,
    /// Join edges `(fk_table, pk_table)`.
    pub joins: Vec<(usize, usize)>,
    /// Predicate columns as `(table, column)` pairs.
    pub predicate_columns: Vec<(usize, usize)>,
}

impl QueryTemplate {
    /// Instantiates the template with fresh random literals.
    pub fn instantiate<R: Rng>(&self, ds: &Dataset, rng: &mut R) -> Query {
        let predicates = self
            .predicate_columns
            .iter()
            .map(|&(t, c)| {
                let col = &ds.tables[t].columns[c];
                let lo_v = col.min().unwrap_or(0);
                let hi_v = col.max().unwrap_or(0);
                let center = if col.is_empty() {
                    lo_v
                } else {
                    col.data[rng.gen_range(0..col.len())]
                };
                let span = ((hi_v - lo_v) as f64).max(1.0);
                let width = (rng.gen::<f64>() * span * 0.3) as Value;
                Predicate {
                    table: t,
                    column: c,
                    lo: (center - width).max(lo_v),
                    hi: (center + width).min(hi_v),
                }
            })
            .collect();
        Query {
            tables: self.tables.clone(),
            joins: self.joins.clone(),
            predicates,
        }
    }
}

/// Derives `count` templates from the dataset's join graph: template `i`
/// joins a deterministic connected subtree and fixes one predicate column
/// per table. Mirrors how CEB enumerates join templates over IMDB.
pub fn derive_templates<R: Rng>(ds: &Dataset, count: usize, rng: &mut R) -> Vec<QueryTemplate> {
    let spec = WorkloadSpec {
        num_queries: 1,
        min_tables: 1,
        max_tables: 5,
        min_predicates: 0,
        max_predicates_per_table: 1,
    };
    (0..count)
        .map(|i| {
            let q = crate::gen::generate_query(ds, &spec, rng);
            let mut predicate_columns: Vec<(usize, usize)> = Vec::new();
            for &t in &q.tables {
                let cols = ds.tables[t].data_column_indices();
                if let Some(&c) = cols.as_slice().choose(rng) {
                    predicate_columns.push((t, c));
                }
            }
            QueryTemplate {
                id: format!("{}{}", i / 26 + 1, (b'a' + (i % 26) as u8) as char),
                tables: q.tables,
                joins: q.joins,
                predicate_columns,
            }
        })
        .collect()
}

/// Generates a CEB-like workload: `per_template` instantiations of each
/// template, flattened.
pub fn ceb_workload<R: Rng>(
    ds: &Dataset,
    templates: &[QueryTemplate],
    per_template: usize,
    rng: &mut R,
) -> Vec<Query> {
    templates
        .iter()
        .flat_map(|t| {
            (0..per_template)
                .map(|_| t.instantiate(ds, rng))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::realworld::imdb_like;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn templates_instantiate_to_valid_queries() {
        let mut rng = StdRng::seed_from_u64(71);
        let ds = imdb_like(0.01, &mut rng);
        let templates = derive_templates(&ds, 10, &mut rng);
        assert_eq!(templates.len(), 10);
        let wl = ceb_workload(&ds, &templates, 5, &mut rng);
        assert_eq!(wl.len(), 50);
        for q in &wl {
            q.validate(&ds).unwrap();
        }
    }

    #[test]
    fn instantiations_share_structure_but_differ_in_literals() {
        let mut rng = StdRng::seed_from_u64(72);
        let ds = imdb_like(0.01, &mut rng);
        let templates = derive_templates(&ds, 3, &mut rng);
        let t = &templates[0];
        let a = t.instantiate(&ds, &mut rng);
        let b = t.instantiate(&ds, &mut rng);
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.joins, b.joins);
        assert_eq!(a.predicates.len(), b.predicates.len());
    }

    #[test]
    fn template_ids_are_ceb_style() {
        let mut rng = StdRng::seed_from_u64(73);
        let ds = imdb_like(0.01, &mut rng);
        let templates = derive_templates(&ds, 30, &mut rng);
        assert_eq!(templates[0].id, "1a");
        assert_eq!(templates[25].id, "1z");
        assert_eq!(templates[26].id, "2a");
    }
}
