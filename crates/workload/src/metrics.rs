//! Accuracy metrics.

/// Q-error (§II, metric 1): `max(est, true) / min(est, true)`, with both
/// sides floored at 1 row (the standard convention, also used by the paper's
/// baselines) so empty results do not blow the ratio up to infinity.
pub fn qerror(estimated: f64, true_card: f64) -> f64 {
    let e = estimated.max(1.0);
    let t = true_card.max(1.0);
    if e >= t {
        e / t
    } else {
        t / e
    }
}

/// Mean Q-error over paired estimates and ground truths.
pub fn mean_qerror(estimates: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(estimates.len(), truths.len());
    if estimates.is_empty() {
        return 1.0;
    }
    estimates
        .iter()
        .zip(truths)
        .map(|(&e, &t)| qerror(e, t))
        .sum::<f64>()
        / estimates.len() as f64
}

/// The given percentile (0-100) of the Q-error distribution.
pub fn percentile_qerror(estimates: &[f64], truths: &[f64], pct: f64) -> f64 {
    assert_eq!(estimates.len(), truths.len());
    if estimates.is_empty() {
        return 1.0;
    }
    let mut qs: Vec<f64> = estimates
        .iter()
        .zip(truths)
        .map(|(&e, &t)| qerror(e, t))
        .collect();
    qs.sort_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));
    let rank = ((pct / 100.0) * (qs.len() - 1) as f64).round() as usize;
    qs[rank.min(qs.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_and_floored() {
        assert_eq!(qerror(10.0, 100.0), 10.0);
        assert_eq!(qerror(100.0, 10.0), 10.0);
        assert_eq!(qerror(1.0, 1.0), 1.0);
        // Zero estimates / truths are floored at 1.
        assert_eq!(qerror(0.0, 5.0), 5.0);
        assert_eq!(qerror(5.0, 0.0), 5.0);
        assert_eq!(qerror(0.0, 0.0), 1.0);
    }

    #[test]
    fn aggregates() {
        let est = vec![1.0, 10.0, 100.0];
        let tru = vec![1.0, 1.0, 1.0];
        assert!((mean_qerror(&est, &tru) - 37.0).abs() < 1e-9);
        assert_eq!(percentile_qerror(&est, &tru, 50.0), 10.0);
        assert_eq!(percentile_qerror(&est, &tru, 100.0), 100.0);
        assert_eq!(mean_qerror(&[], &[]), 1.0);
    }
}
