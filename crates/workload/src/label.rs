//! Ground-truth labeling of workloads (paper Stage 1, step "acquire the true
//! cardinalities by running the queries in the database").

use ce_storage::exec::query_cardinality;
use ce_storage::{Dataset, Query, StorageError};
use serde::{Deserialize, Serialize};

/// A query paired with its exact result cardinality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledQuery {
    /// The SPJ query.
    pub query: Query,
    /// Exact result cardinality.
    pub true_card: u64,
}

/// Labels every query with its exact cardinality.
pub fn label_workload(ds: &Dataset, queries: &[Query]) -> Result<Vec<LabeledQuery>, StorageError> {
    queries
        .iter()
        .map(|q| {
            Ok(LabeledQuery {
                query: q.clone(),
                true_card: query_cardinality(ds, q)?,
            })
        })
        .collect()
}

/// Splits a labeled workload into training and testing portions, following
/// the paper's 9,000 / 1,000 convention (`train_fraction = 0.9`).
pub fn train_test_split(
    labeled: Vec<LabeledQuery>,
    train_fraction: f64,
) -> (Vec<LabeledQuery>, Vec<LabeledQuery>) {
    let cut = ((labeled.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
    let mut train = labeled;
    let test = train.split_off(cut.min(train.len()));
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_workload, WorkloadSpec};
    use ce_datagen::{generate_dataset, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels_match_direct_counting() {
        let mut rng = StdRng::seed_from_u64(61);
        let ds = generate_dataset("l", &DatasetSpec::small(), &mut rng);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 30,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        let labeled = label_workload(&ds, &queries).unwrap();
        assert_eq!(labeled.len(), 30);
        for lq in &labeled {
            assert_eq!(
                lq.true_card,
                query_cardinality(&ds, &lq.query).unwrap(),
                "labels must be reproducible"
            );
        }
    }

    #[test]
    fn split_sizes() {
        let mut rng = StdRng::seed_from_u64(62);
        let ds = generate_dataset("s", &DatasetSpec::small().single_table(), &mut rng);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 100,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        let labeled = label_workload(&ds, &queries).unwrap();
        let (train, test) = train_test_split(labeled, 0.9);
        assert_eq!(train.len(), 90);
        assert_eq!(test.len(), 10);
    }
}
