//! Property tests for the histogram invariants and both exposition
//! codecs: whatever values are observed, bucket counts partition the
//! observation count, the rendered cumulative series is monotone, and
//! render → parse (text) and encode → decode (binary) are lossless.

use ce_obs::{
    parse_prometheus, MetricsRegistry, MetricsSnapshot, Sample, SampleValue, LATENCY_NS_BUCKETS,
};
use proptest::prelude::*;

/// Label values that stress the exposition escaping rules.
const LABEL_VALUES: &[&str] = &[
    "plain",
    "with,comma",
    "with\"quote",
    "back\\slash",
    "multi\nline",
    "",
];

/// Builds a snapshot with one counter, one gauge and one histogram, all
/// exercising generated values and escaped label text.
fn build_snapshot(counter: u64, gauge: u64, label_idx: usize, values: &[u64]) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    let label = LABEL_VALUES[label_idx % LABEL_VALUES.len()];
    reg.counter("ce_prop_events_total", &[("tag", label)])
        .add(counter);
    reg.gauge("ce_prop_resident", &[]).set(gauge);
    let h = reg.histogram("ce_prop_latency_ns", &[("tag", label)], LATENCY_NS_BUCKETS);
    for &v in values {
        h.observe(v);
    }
    reg.snapshot()
}

proptest! {
    /// Bucket counts partition the observations: each value lands in
    /// exactly the first bucket whose bound admits it, the per-bucket
    /// counts sum to the total count, and the sum is exact.
    #[test]
    fn histogram_buckets_partition_observations(
        values in prop::collection::vec(0u64..20_000_000_000, 0..200),
    ) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", &[], LATENCY_NS_BUCKETS);
        for &v in &values {
            h.observe(v);
        }
        let snap = reg.snapshot();
        match snap.get("lat_ns", &[]) {
            Some(SampleValue::Histogram { bounds, counts, sum, count }) => {
                prop_assert_eq!(bounds.as_slice(), LATENCY_NS_BUCKETS);
                prop_assert_eq!(*count, values.len() as u64);
                prop_assert_eq!(*sum, values.iter().sum::<u64>());
                prop_assert_eq!(counts.iter().sum::<u64>(), *count, "buckets partition the count");
                // Recompute the expected partition independently.
                let mut expected = vec![0u64; bounds.len() + 1];
                for &v in &values {
                    let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
                    expected[idx] += 1;
                }
                prop_assert_eq!(counts, &expected);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    /// The rendered cumulative bucket series is monotone non-decreasing
    /// and ends at the total count — the Prometheus histogram contract.
    #[test]
    fn rendered_cumulative_buckets_are_monotone(
        values in prop::collection::vec(0u64..40_000_000_000, 1..100),
    ) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", &[], LATENCY_NS_BUCKETS);
        for &v in &values {
            h.observe(v);
        }
        let text = reg.snapshot().render_prometheus();
        let cumulative: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_ns_bucket"))
            .map(|l| l.rsplit_once(' ').expect("value").1.parse().expect("integer"))
            .collect();
        prop_assert_eq!(cumulative.len(), LATENCY_NS_BUCKETS.len() + 1, "one series per bucket plus +Inf");
        prop_assert!(cumulative.windows(2).all(|w| w[0] <= w[1]), "cumulative series must be monotone");
        prop_assert_eq!(*cumulative.last().unwrap(), values.len() as u64, "+Inf bucket is the total count");
    }

    /// render → parse → render is lossless and byte-identical, including
    /// escaped label text.
    #[test]
    fn prometheus_roundtrip_is_lossless(
        counter in 0u64..1_000_000,
        gauge in 0u64..1_000_000,
        label_idx in 0usize..6,
        values in prop::collection::vec(0u64..20_000_000_000, 0..50),
    ) {
        let snap = build_snapshot(counter, gauge, label_idx, &values);
        let text = snap.render_prometheus();
        let parsed = parse_prometheus(&text).expect("own renderer output must parse");
        prop_assert_eq!(&parsed, &snap);
        prop_assert_eq!(parsed.render_prometheus(), text, "round-trip must be byte-identical");
    }

    /// The binary wire codec round-trips exactly, and merging a snapshot
    /// into itself doubles every countable value.
    #[test]
    fn binary_roundtrip_and_merge_double(
        counter in 0u64..1_000_000,
        gauge in 0u64..1_000_000,
        label_idx in 0usize..6,
        values in prop::collection::vec(0u64..20_000_000_000, 0..50),
    ) {
        let snap = build_snapshot(counter, gauge, label_idx, &values);
        let decoded = MetricsSnapshot::from_bytes(&snap.to_bytes()).expect("decode");
        prop_assert_eq!(&decoded, &snap);
        let mut doubled = snap.clone();
        doubled.merge(&snap);
        let label = LABEL_VALUES[label_idx % LABEL_VALUES.len()];
        prop_assert_eq!(
            doubled.counter("ce_prop_events_total", &[("tag", label)]),
            counter * 2
        );
        let (sum, count) = doubled.histogram_totals("ce_prop_latency_ns", &[("tag", label)]);
        prop_assert_eq!(sum, values.iter().sum::<u64>() * 2);
        prop_assert_eq!(count, values.len() as u64 * 2);
    }
}

/// Sanity check outside the macro: parsing rejects text we never emit
/// instead of mis-assembling a snapshot.
#[test]
fn parser_rejects_garbage() {
    assert!(parse_prometheus("not a metric line").is_err());
    assert!(parse_prometheus("# TYPE x histogram\nx_bucket 5").is_err());
    // Non-monotone cumulative buckets are corrupt, not negative counts.
    let bad =
        "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
    assert!(parse_prometheus(bad).is_err());
}

/// The `Sample` type is constructible by hand (the parser/merge path) and
/// by registry snapshot; both normalize to the same ordering.
#[test]
fn hand_built_and_registry_snapshots_agree() {
    let reg = MetricsRegistry::new();
    reg.counter("b_total", &[]).add(2);
    reg.counter("a_total", &[("x", "1")]).add(1);
    let from_reg = reg.snapshot();
    let mut by_hand = MetricsSnapshot {
        samples: vec![
            Sample {
                name: "b_total".into(),
                labels: vec![],
                value: SampleValue::Counter(2),
            },
            Sample {
                name: "a_total".into(),
                labels: vec![("x".into(), "1".into())],
                value: SampleValue::Counter(1),
            },
        ],
    };
    by_hand.normalize();
    assert_eq!(from_reg, by_hand);
}
