//! Typed metric snapshots: merging, a hand-written binary codec (so a
//! snapshot can cross the cluster wire without `ce-obs` growing a serde
//! dependency), and Prometheus text exposition with a parser good enough
//! to round-trip our own renderer's output in tests.

use std::fmt;

/// What a sample is, without its value. Used by exposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample's value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(u64),
    /// Distribution: per-bucket counts (one per bound plus the +Inf
    /// overflow bucket, non-cumulative), total sum and count.
    Histogram {
        /// Finite bucket upper bounds, strictly increasing.
        bounds: Vec<u64>,
        /// Non-cumulative per-bucket counts; `counts.len() == bounds.len() + 1`.
        counts: Vec<u64>,
        /// Sum of all observations.
        sum: u64,
        /// Total observation count.
        count: u64,
    },
}

impl SampleValue {
    /// The sample's kind tag.
    pub fn kind(&self) -> MetricKind {
        match self {
            SampleValue::Counter(_) => MetricKind::Counter,
            SampleValue::Gauge(_) => MetricKind::Gauge,
            SampleValue::Histogram { .. } => MetricKind::Histogram,
        }
    }
}

/// One named, labelled sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Metric family name (stable names are API — see
    /// `docs/observability.md`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: SampleValue,
}

impl Sample {
    fn key(&self) -> (&str, &[(String, String)]) {
        (&self.name, &self.labels)
    }
}

/// Decode/parse failures for [`MetricsSnapshot::from_bytes`] and
/// [`parse_prometheus`].
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Binary payload truncated or structurally invalid.
    Corrupt(&'static str),
    /// Text line that does not parse, with the offending line.
    BadLine(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::BadLine(line) => write!(f, "unparseable exposition line: {line:?}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Magic prefix of the binary snapshot encoding.
const SNAPSHOT_MAGIC: &[u8; 4] = b"CEOB";
/// Version of the binary snapshot encoding.
const SNAPSHOT_VERSION: u16 = 1;

/// A point-in-time set of samples in stable `(name, labels)` order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The samples, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// An empty snapshot (what a disabled registry and the default
    /// `AdvisorBackend::metrics` return).
    pub fn empty() -> Self {
        MetricsSnapshot::default()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Restores the stable order invariant. Called by every constructor
    /// path; callers mutating `samples` directly should re-call it.
    pub fn normalize(&mut self) {
        self.samples.sort_by(|a, b| a.key().cmp(&b.key()));
    }

    /// Looks up one sample by exact name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        let mut l: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        l.sort();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == l)
            .map(|s| &s.value)
    }

    /// Convenience: the value of a counter sample, 0 when absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(SampleValue::Counter(v)) | Some(SampleValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: `(sum, count)` of a histogram sample, zeros when
    /// absent.
    pub fn histogram_totals(&self, name: &str, labels: &[(&str, &str)]) -> (u64, u64) {
        match self.get(name, labels) {
            Some(SampleValue::Histogram { sum, count, .. }) => (*sum, *count),
            _ => (0, 0),
        }
    }

    /// Adds a label pair to every sample (used by the coordinator to tag
    /// per-shard snapshots with `range`/`replica` before merging, so
    /// same-named families stay distinguishable).
    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        for s in &mut self.samples {
            s.labels.push((key.to_string(), value.to_string()));
            s.labels.sort();
        }
        self.normalize();
        self
    }

    /// Merges `other` into `self`: counters and gauges add, histograms
    /// add bucket-wise when bounds agree (mismatched bounds keep `self`'s
    /// sample untouched — bounds are compile-time constants, so a
    /// mismatch means two builds disagree and silently mixing them would
    /// lie). Samples only in `other` are appended.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for theirs in &other.samples {
            match self.samples.iter_mut().find(|s| s.key() == theirs.key()) {
                None => self.samples.push(theirs.clone()),
                Some(ours) => match (&mut ours.value, &theirs.value) {
                    (SampleValue::Counter(a), SampleValue::Counter(b)) => *a += b,
                    (SampleValue::Gauge(a), SampleValue::Gauge(b)) => *a += b,
                    (
                        SampleValue::Histogram {
                            bounds: ba,
                            counts: ca,
                            sum: sa,
                            count: na,
                        },
                        SampleValue::Histogram {
                            bounds: bb,
                            counts: cb,
                            sum: sb,
                            count: nb,
                        },
                    ) if ba == bb => {
                        for (a, b) in ca.iter_mut().zip(cb) {
                            *a += b;
                        }
                        *sa += sb;
                        *na += nb;
                    }
                    _ => {}
                },
            }
        }
        self.normalize();
    }

    /// Binary encoding for the cluster wire (`ShardSendMetrics`
    /// payloads). Hand-written and std-only so `ce-obs` stays
    /// dependency-free.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for v in vs {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.samples.len() as u32).to_le_bytes());
        for s in &self.samples {
            put_str(&mut out, &s.name);
            out.extend_from_slice(&(s.labels.len() as u32).to_le_bytes());
            for (k, v) in &s.labels {
                put_str(&mut out, k);
                put_str(&mut out, v);
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push(0);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                SampleValue::Gauge(v) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    out.push(2);
                    put_u64s(&mut out, bounds);
                    put_u64s(&mut out, counts);
                    out.extend_from_slice(&sum.to_le_bytes());
                    out.extend_from_slice(&count.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes [`MetricsSnapshot::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        struct R<'a>(&'a [u8]);
        impl<'a> R<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
                if self.0.len() < n {
                    return Err(SnapshotError::Corrupt("truncated"));
                }
                let (head, tail) = self.0.split_at(n);
                self.0 = tail;
                Ok(head)
            }
            fn u64(&mut self) -> Result<u64, SnapshotError> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn u32(&mut self) -> Result<u32, SnapshotError> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn str(&mut self) -> Result<String, SnapshotError> {
                let n = self.u32()? as usize;
                if n > self.0.len() {
                    return Err(SnapshotError::Corrupt("string length overruns payload"));
                }
                String::from_utf8(self.take(n)?.to_vec())
                    .map_err(|_| SnapshotError::Corrupt("non-utf8 string"))
            }
            fn u64s(&mut self) -> Result<Vec<u64>, SnapshotError> {
                let n = self.u32()? as usize;
                if n > self.0.len() / 8 {
                    return Err(SnapshotError::Corrupt("u64 array overruns payload"));
                }
                (0..n).map(|_| self.u64()).collect()
            }
        }
        let mut r = R(bytes);
        if r.take(4)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Corrupt("bad magic"));
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Corrupt("unknown snapshot version"));
        }
        let n = r.u32()? as usize;
        let mut samples = Vec::new();
        for _ in 0..n {
            let name = r.str()?;
            let nlabels = r.u32()? as usize;
            let mut labels = Vec::with_capacity(nlabels.min(64));
            for _ in 0..nlabels {
                let k = r.str()?;
                let v = r.str()?;
                labels.push((k, v));
            }
            let value = match r.take(1)?[0] {
                0 => SampleValue::Counter(r.u64()?),
                1 => SampleValue::Gauge(r.u64()?),
                2 => {
                    let bounds = r.u64s()?;
                    let counts = r.u64s()?;
                    if counts.len() != bounds.len() + 1 {
                        return Err(SnapshotError::Corrupt("bucket count mismatch"));
                    }
                    SampleValue::Histogram {
                        bounds,
                        counts,
                        sum: r.u64()?,
                        count: r.u64()?,
                    }
                }
                _ => return Err(SnapshotError::Corrupt("unknown sample kind")),
            };
            samples.push(Sample {
                name,
                labels,
                value,
            });
        }
        if !r.0.is_empty() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        let mut snap = MetricsSnapshot { samples };
        snap.normalize();
        Ok(snap)
    }

    /// Renders Prometheus text exposition. Families appear in stable
    /// `(name, labels)` order with one `# TYPE` line each; histogram
    /// buckets are cumulative with a final `le="+Inf"`, plus `_sum` and
    /// `_count` series. All values are exact integers, so
    /// render → [`parse_prometheus`] → render is byte-identical.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for s in &self.samples {
            if last_family != Some(s.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", s.name, s.value.kind().as_str()));
                last_family = Some(s.name.as_str());
            }
            match &s.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        render_labels(&s.labels, None),
                        v
                    ));
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let mut cumulative = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cumulative += c;
                        let le = bounds
                            .get(i)
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "+Inf".to_string());
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            s.name,
                            render_labels(&s.labels, Some(&le)),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        s.name,
                        render_labels(&s.labels, None),
                        sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        s.name,
                        render_labels(&s.labels, None),
                        count
                    ));
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses the output of [`MetricsSnapshot::render_prometheus`] back into
/// a snapshot. This is a test/verification tool: it understands exactly
/// the subset our renderer emits (integer values, `# TYPE` comments,
/// cumulative histogram buckets).
pub fn parse_prometheus(text: &str) -> Result<MetricsSnapshot, SnapshotError> {
    use std::collections::BTreeMap;

    let mut kinds: BTreeMap<String, MetricKind> = BTreeMap::new();
    // (family, labels) -> partially assembled histogram.
    type HistKey = (String, Vec<(String, String)>);
    struct PartialHist {
        // (le bound or None for +Inf, cumulative count)
        buckets: Vec<(Option<u64>, u64)>,
        sum: Option<u64>,
        count: Option<u64>,
    }
    let mut hists: Vec<(HistKey, PartialHist)> = Vec::new();
    let mut samples: Vec<Sample> = Vec::new();

    fn bad(line: &str) -> SnapshotError {
        SnapshotError::BadLine(line.to_string())
    }

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| bad(line))?;
            let kind = match it.next() {
                Some("counter") => MetricKind::Counter,
                Some("gauge") => MetricKind::Gauge,
                Some("histogram") => MetricKind::Histogram,
                _ => return Err(bad(line)),
            };
            kinds.insert(name.to_string(), kind);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // `name{labels} value` or `name value`.
        let (name_labels, value) = line.rsplit_once(' ').ok_or_else(|| bad(line))?;
        let value: u64 = value.parse().map_err(|_| bad(line))?;
        let (name, labels) = match name_labels.split_once('{') {
            None => (name_labels.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').ok_or_else(|| bad(line))?;
                let mut labels = Vec::new();
                for pair in split_label_pairs(body) {
                    let (k, v) = pair.split_once('=').ok_or_else(|| bad(line))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| bad(line))?;
                    labels.push((k.to_string(), unescape_label(v)));
                }
                (name.to_string(), labels)
            }
        };
        // Histogram series are recognized by suffix + declared family kind.
        let family_of = |suffix: &str| -> Option<String> {
            name.strip_suffix(suffix)
                .filter(|f| kinds.get(*f) == Some(&MetricKind::Histogram))
                .map(str::to_string)
        };
        if let Some(family) = family_of("_bucket") {
            let mut rest: Vec<(String, String)> = Vec::new();
            let mut le: Option<String> = None;
            for (k, v) in labels {
                if k == "le" {
                    le = Some(v);
                } else {
                    rest.push((k, v));
                }
            }
            let le = le.ok_or_else(|| bad(line))?;
            let bound = if le == "+Inf" {
                None
            } else {
                Some(le.parse::<u64>().map_err(|_| bad(line))?)
            };
            rest.sort();
            let key = (family, rest);
            let slot = match hists.iter_mut().find(|(k, _)| *k == key) {
                Some((_, h)) => h,
                None => {
                    hists.push((
                        key,
                        PartialHist {
                            buckets: Vec::new(),
                            sum: None,
                            count: None,
                        },
                    ));
                    &mut hists.last_mut().unwrap().1
                }
            };
            slot.buckets.push((bound, value));
            continue;
        }
        for suffix in ["_sum", "_count"] {
            if let Some(family) = family_of(suffix) {
                let mut rest = labels.clone();
                rest.sort();
                let key = (family, rest);
                let slot = match hists.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, h)) => h,
                    None => {
                        hists.push((
                            key,
                            PartialHist {
                                buckets: Vec::new(),
                                sum: None,
                                count: None,
                            },
                        ));
                        &mut hists.last_mut().unwrap().1
                    }
                };
                if suffix == "_sum" {
                    slot.sum = Some(value);
                } else {
                    slot.count = Some(value);
                }
            }
        }
        if name.ends_with("_sum") || name.ends_with("_count") || name.ends_with("_bucket") {
            let family = name
                .rsplit_once('_')
                .map(|(f, _)| f.to_string())
                .unwrap_or_default();
            if kinds.get(&family) == Some(&MetricKind::Histogram) {
                continue; // handled above
            }
        }
        let kind = kinds.get(&name).copied().unwrap_or(MetricKind::Counter);
        let mut labels = labels;
        labels.sort();
        samples.push(Sample {
            name,
            labels,
            value: match kind {
                MetricKind::Gauge => SampleValue::Gauge(value),
                _ => SampleValue::Counter(value),
            },
        });
    }

    for ((name, labels), h) in hists {
        let mut buckets = h.buckets;
        // +Inf sorts last; finite bounds ascending.
        buckets.sort_by_key(|(b, _)| b.map(|v| (0u8, v)).unwrap_or((1, 0)));
        let bounds: Vec<u64> = buckets.iter().filter_map(|(b, _)| *b).collect();
        // De-cumulate.
        let mut counts = Vec::with_capacity(buckets.len());
        let mut prev = 0u64;
        for (_, cumulative) in &buckets {
            counts.push(
                cumulative
                    .checked_sub(prev)
                    .ok_or(SnapshotError::Corrupt("non-monotone cumulative buckets"))?,
            );
            prev = *cumulative;
        }
        if counts.len() != bounds.len() + 1 {
            return Err(SnapshotError::Corrupt("histogram missing +Inf bucket"));
        }
        samples.push(Sample {
            name,
            labels,
            value: SampleValue::Histogram {
                bounds,
                counts,
                sum: h
                    .sum
                    .ok_or(SnapshotError::Corrupt("histogram missing _sum"))?,
                count: h
                    .count
                    .ok_or(SnapshotError::Corrupt("histogram missing _count"))?,
            },
        });
    }

    let mut snap = MetricsSnapshot { samples };
    snap.normalize();
    Ok(snap)
}

/// Splits `a="1",b="2,3"` into pairs, respecting quotes (label values may
/// contain commas).
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => depth_quote = !depth_quote,
            b',' if !depth_quote => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < body.len() {
        parts.push(&body[start..]);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut s = MetricsSnapshot {
            samples: vec![
                Sample {
                    name: "ce_serve_cache_hits_total".into(),
                    labels: vec![],
                    value: SampleValue::Counter(42),
                },
                Sample {
                    name: "ce_cluster_nacks_total".into(),
                    labels: vec![("code".into(), "stale_table".into())],
                    value: SampleValue::Counter(3),
                },
                Sample {
                    name: "ce_serve_queue_depth".into(),
                    labels: vec![],
                    value: SampleValue::Gauge(7),
                },
                Sample {
                    name: "ce_serve_batch_depth".into(),
                    labels: vec![],
                    value: SampleValue::Histogram {
                        bounds: vec![1, 2, 4, 8],
                        counts: vec![5, 3, 0, 2, 1],
                        sum: 61,
                        count: 11,
                    },
                },
            ],
        };
        s.normalize();
        s
    }

    #[test]
    fn binary_roundtrip() {
        let s = sample_snapshot();
        let decoded = MetricsSnapshot::from_bytes(&s.to_bytes()).expect("decode");
        assert_eq!(decoded, s);
    }

    #[test]
    fn corrupt_bytes_error_not_panic() {
        let bytes = sample_snapshot().to_bytes();
        for cut in [0, 3, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(MetricsSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(MetricsSnapshot::from_bytes(&bad_magic).is_err());
        // Hostile length prefix must not allocate absurdly or panic.
        let mut hostile = bytes;
        let len = hostile.len();
        hostile[len - 1] = 0xff;
        let _ = MetricsSnapshot::from_bytes(&hostile);
    }

    #[test]
    fn prometheus_roundtrip_is_byte_identical() {
        let s = sample_snapshot();
        let text = s.render_prometheus();
        let parsed = parse_prometheus(&text).expect("parse");
        assert_eq!(parsed, s);
        assert_eq!(parsed.render_prometheus(), text);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = sample_snapshot();
        let b = sample_snapshot();
        a.merge(&b);
        assert_eq!(
            a.counter("ce_serve_cache_hits_total", &[]),
            84,
            "counters add"
        );
        assert_eq!(a.histogram_totals("ce_serve_batch_depth", &[]), (122, 22));
        // A sample only in `other` is appended.
        let mut c = MetricsSnapshot::empty();
        c.merge(&b);
        assert_eq!(c, b);
    }

    #[test]
    fn with_label_tags_every_sample() {
        let s = sample_snapshot().with_label("range", "2");
        for sample in &s.samples {
            assert!(sample.labels.iter().any(|(k, v)| k == "range" && v == "2"));
        }
        assert_eq!(
            s.counter("ce_serve_cache_hits_total", &[("range", "2")]),
            42
        );
    }

    #[test]
    fn histogram_rendering_is_cumulative() {
        let text = sample_snapshot().render_prometheus();
        assert!(text.contains("ce_serve_batch_depth_bucket{le=\"1\"} 5"));
        assert!(text.contains("ce_serve_batch_depth_bucket{le=\"2\"} 8"));
        assert!(text.contains("ce_serve_batch_depth_bucket{le=\"+Inf\"} 11"));
        assert!(text.contains("ce_serve_batch_depth_sum 61"));
        assert!(text.contains("ce_serve_batch_depth_count 11"));
    }
}
