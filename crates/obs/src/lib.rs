//! `ce-obs`: the dependency-free observability core of the AutoCE
//! reproduction — atomic counters, gauges, fixed-bound bucketed
//! histograms, and span timing, collected through a [`MetricsRegistry`]
//! and exposed as a typed [`MetricsSnapshot`] or Prometheus text.
//!
//! Design constraints (these are invariants, not preferences — see
//! `docs/observability.md`):
//!
//! - **No hot-path locks.** Recording into any handle is a plain
//!   `fetch_add` on pre-registered atomics; the registry's internal mutex
//!   is taken only at registration and snapshot time (both cold paths).
//!   Metrics must never take a *serving* lock: handles are registered
//!   up front and cloned into whatever struct does the recording.
//! - **Disabled means free.** A handle from [`MetricsRegistry::disabled`]
//!   carries no allocation and every record call is a no-op the optimizer
//!   can delete — which is what makes an honest "instrumented vs. not"
//!   overhead bench possible in one binary.
//! - **Deterministic under simulation.** With
//!   [`MetricsRegistry::new_logical`], spans read a process-local logical
//!   tick counter instead of the wall clock, so runs under `SimNet` make
//!   zero timing syscalls on instrumented paths and gauntlet trace replay
//!   stays byte-equal with metrics enabled. Metrics are a read-only side
//!   channel: they never append to deterministic event traces.
//! - **Stable exposition.** Snapshots and rendered text are sorted by
//!   `(name, labels)` so diffs are clean and tests can pin exact output.

mod snapshot;

pub use snapshot::{
    parse_prometheus, MetricKind, MetricsSnapshot, Sample, SampleValue, SnapshotError,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Latency buckets in nanoseconds: 1µs → ~16s, powers of four. Thirteen
/// bounds keep the per-histogram footprint tiny while still separating
/// "cache hit" (~µs) from "cold batch" (~ms) from "deadline blown" (~s).
pub const LATENCY_NS_BUCKETS: &[u64] = &[
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
    16_000_000_000,
];

/// Small-count buckets (batch depth, pool checkouts per call): powers of
/// two up to 1024.
pub const DEPTH_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Large-count buckets (KNN index re-rank candidates, scan lengths):
/// powers of four up to ~1M, for populations that span "a handful" to
/// "the whole RCS".
pub const COUNT_BUCKETS: &[u64] = &[
    4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
];

/// Key of one registered metric: name plus sorted label pairs. Ordered
/// (`BTreeMap`) so snapshots come out in stable exposition order without
/// a separate sort.
type Key = (String, Vec<(String, String)>);

/// The time source spans measure against.
#[derive(Clone)]
enum Clock {
    /// Wall time via `Instant` (monotonic).
    Wall,
    /// A shared logical tick counter; each span start and end advances it
    /// by one. Under a serialized caller (e.g. a coordinator mutex) the
    /// recorded durations are fully deterministic, and no timing syscall
    /// is ever made.
    Logical(Arc<AtomicU64>),
}

struct HistCell {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: &'static [u64],
    /// One count per finite bucket plus the overflow (+Inf) bucket.
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistCell {
    fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistCell {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        // Bounds arrays are compile-time constants of ~a dozen entries;
        // a branch-predictable linear scan beats binary search here.
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

struct Inner {
    clock: Clock,
    counters: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<Key, Arc<HistCell>>>,
}

/// Handle-issuing metrics registry. Cloning is cheap (one `Arc`); a
/// registry constructed with [`MetricsRegistry::disabled`] issues no-op
/// handles and snapshots empty.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match self.inner.as_deref() {
            None => "disabled",
            Some(Inner {
                clock: Clock::Wall, ..
            }) => "wall",
            Some(Inner {
                clock: Clock::Logical(_),
                ..
            }) => "logical",
        };
        write!(f, "MetricsRegistry({mode})")
    }
}

impl MetricsRegistry {
    /// An enabled registry whose spans measure wall time.
    pub fn new() -> Self {
        Self::with_clock(Clock::Wall)
    }

    /// An enabled registry whose spans count logical ticks instead of
    /// wall nanoseconds — the mode to use under `SimNet` or anywhere
    /// byte-equal replay matters more than real durations.
    pub fn new_logical() -> Self {
        Self::with_clock(Clock::Logical(Arc::new(AtomicU64::new(0))))
    }

    /// A disabled registry: every handle is a no-op, snapshots are empty.
    /// This is the default.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    fn with_clock(clock: Clock) -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Inner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether spans use the logical clock.
    pub fn is_logical(&self) -> bool {
        matches!(
            self.inner.as_deref(),
            Some(Inner {
                clock: Clock::Logical(_),
                ..
            })
        )
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut l: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        l.sort();
        (name.to_string(), l)
    }

    /// Registers (or re-fetches) a counter. Same `(name, labels)` always
    /// returns a handle onto the same cell.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            let mut map = inner.counters.lock().expect("obs counter map");
            map.entry(Self::key(name, labels))
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone()
        }))
    }

    /// Registers (or re-fetches) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            let mut map = inner.gauges.lock().expect("obs gauge map");
            map.entry(Self::key(name, labels))
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone()
        }))
    }

    /// Registers (or re-fetches) a histogram over `bounds` (strictly
    /// increasing, `'static` so the hot path never chases an allocation).
    /// If the key exists, the original bounds win.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &'static [u64],
    ) -> Histogram {
        let cell = self.inner.as_ref().map(|inner| {
            let mut map = inner.histograms.lock().expect("obs histogram map");
            map.entry(Self::key(name, labels))
                .or_insert_with(|| Arc::new(HistCell::new(bounds)))
                .clone()
        });
        Histogram {
            cell,
            clock: self
                .inner
                .as_ref()
                .map(|i| i.clock.clone())
                .unwrap_or(Clock::Wall),
        }
    }

    /// A point-in-time snapshot of every registered metric, in stable
    /// `(name, labels)` order. Disabled registries snapshot empty.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples = Vec::new();
        if let Some(inner) = &self.inner {
            for (key, cell) in inner.counters.lock().expect("obs counter map").iter() {
                samples.push(Sample {
                    name: key.0.clone(),
                    labels: key.1.clone(),
                    value: SampleValue::Counter(cell.load(Ordering::Relaxed)),
                });
            }
            for (key, cell) in inner.gauges.lock().expect("obs gauge map").iter() {
                samples.push(Sample {
                    name: key.0.clone(),
                    labels: key.1.clone(),
                    value: SampleValue::Gauge(cell.load(Ordering::Relaxed)),
                });
            }
            for (key, cell) in inner.histograms.lock().expect("obs histogram map").iter() {
                samples.push(Sample {
                    name: key.0.clone(),
                    labels: key.1.clone(),
                    value: SampleValue::Histogram {
                        bounds: cell.bounds.to_vec(),
                        counts: cell
                            .counts
                            .iter()
                            .map(|c| c.load(Ordering::Relaxed))
                            .collect(),
                        sum: cell.sum.load(Ordering::Relaxed),
                        count: cell.count.load(Ordering::Relaxed),
                    },
                });
            }
        }
        let mut snap = MetricsSnapshot { samples };
        snap.normalize();
        snap
    }
}

/// Monotonically increasing event count. All methods are no-ops on a
/// disabled handle.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Last-write-wins point-in-time value. All methods are no-ops on a
/// disabled handle.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Fixed-bound bucketed histogram handle. `observe` is lock-free; a
/// disabled handle records nothing.
#[derive(Clone)]
pub struct Histogram {
    cell: Option<Arc<HistCell>>,
    clock: Clock,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            cell: None,
            clock: Clock::Wall,
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.observe(v);
        }
    }

    /// Total observation count (0 when disabled).
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sum of all observed values (0 when disabled).
    pub fn sum(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.sum.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Starts a span that records its duration (wall nanoseconds, or
    /// logical ticks under a logical-clock registry) into this histogram
    /// when dropped. On a disabled handle the span is free: no clock is
    /// read at either end.
    #[inline]
    pub fn start_span(&self) -> Span {
        let start = if self.cell.is_none() {
            SpanStart::Noop
        } else {
            match &self.clock {
                Clock::Wall => SpanStart::Wall(Instant::now()),
                Clock::Logical(tick) => {
                    SpanStart::Logical(tick.fetch_add(1, Ordering::Relaxed), tick.clone())
                }
            }
        };
        Span {
            hist: self.clone(),
            start,
        }
    }
}

enum SpanStart {
    Noop,
    Wall(Instant),
    Logical(u64, Arc<AtomicU64>),
}

/// RAII span: measures from construction to drop and records the elapsed
/// time into its histogram. Use [`Histogram::start_span`].
pub struct Span {
    hist: Histogram,
    start: SpanStart,
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = match &self.start {
            SpanStart::Noop => return,
            SpanStart::Wall(t0) => {
                let ns = t0.elapsed().as_nanos();
                ns.min(u64::MAX as u128) as u64
            }
            SpanStart::Logical(t0, tick) => {
                let t1 = tick.fetch_add(1, Ordering::Relaxed) + 1;
                t1.saturating_sub(*t0)
            }
        };
        self.hist.observe(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_free_and_empty() {
        let reg = MetricsRegistry::disabled();
        let c = reg.counter("x_total", &[]);
        let g = reg.gauge("x", &[]);
        let h = reg.histogram("x_ns", &[], LATENCY_NS_BUCKETS);
        c.inc();
        g.set(7);
        h.observe(123);
        drop(h.start_span());
        assert_eq!((c.get(), g.get(), h.count()), (0, 0, 0));
        assert!(reg.snapshot().samples.is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn same_key_shares_a_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits_total", &[("path", "inline")]);
        let b = reg.counter("hits_total", &[("path", "inline")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Label order does not matter for identity.
        let c = reg.counter("multi", &[("a", "1"), ("b", "2")]);
        let d = reg.counter("multi", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_totals() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", &[], &[10, 100, 1000]);
        for v in [5u64, 10, 11, 99, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 10 + 11 + 99 + 5000);
        let snap = reg.snapshot();
        match &snap.samples[0].value {
            SampleValue::Histogram { counts, .. } => {
                assert_eq!(
                    &counts[..],
                    &[2, 2, 0, 1],
                    "le=10 gets 5 and 10; +Inf gets 5000"
                );
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn logical_spans_are_deterministic() {
        let trace = |reg: &MetricsRegistry| {
            let h = reg.histogram("phase_ticks", &[], DEPTH_BUCKETS);
            for _ in 0..4 {
                let _s = h.start_span();
            }
            reg.snapshot().render_prometheus()
        };
        let a = trace(&MetricsRegistry::new_logical());
        let b = trace(&MetricsRegistry::new_logical());
        assert_eq!(a, b, "logical-clock exposition must be byte-equal");
        assert!(MetricsRegistry::new_logical().is_logical());
        assert!(!MetricsRegistry::new().is_logical());
    }

    #[test]
    fn wall_span_records_something() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", &[], LATENCY_NS_BUCKETS);
        drop(h.start_span());
        assert_eq!(h.count(), 1);
    }
}
