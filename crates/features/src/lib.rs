//! # ce-features — feature engineering and feature-graph modeling (§V-A)
//!
//! A training sample for AutoCE is a *dataset*, not a tuple. This crate
//! extracts the CE-relevant data features and models them as a **feature
//! graph**: vertices are tables (carrying per-column statistics and
//! column-pair correlations), edges are PK-FK joins weighted by join
//! correlation.
//!
//! Vertex layout follows the paper exactly (§V-A2, Example 3): with `m` the
//! global maximum column count and `k` per-column features, each vertex is a
//! flattened vector of `(k + m)·m + 2` entries — `k` statistics plus `m`
//! correlation slots per column, padded with zeros, plus the table's row and
//! column counts. The per-column features are the paper's list: skewness,
//! kurtosis, standard deviation, mean deviation, range and domain size; the
//! correlation feature is the same-position equality rate (the reverse of
//! the generator's F2 process), and edge weights reverse F3 (FK-over-PK set
//! coverage).

pub mod csr;
pub mod graph;
pub mod mixup;

pub use csr::CsrAdjacency;
pub use graph::{extract_features, FeatureConfig, FeatureGraph, COLUMN_FEATURES};
pub use mixup::{mixup_graphs, mixup_labels};
