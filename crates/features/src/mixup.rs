//! Mixup over feature graphs (Eq. 14): the data-augmentation primitive of
//! the incremental-learning stage.
//!
//! `G′ = λ·G_i + (1−λ)·G_j` is computed elementwise over the vertex and
//! edge matrices; graphs of different sizes are zero-padded to the larger
//! vertex count first (a missing table is exactly an all-zero vertex with no
//! incident edges, so padding is semantically neutral).

use crate::graph::FeatureGraph;

/// Linearly interpolates two feature graphs with coefficient `lambda`.
pub fn mixup_graphs(a: &FeatureGraph, b: &FeatureGraph, lambda: f32) -> FeatureGraph {
    let lambda = lambda.clamp(0.0, 1.0);
    let n = a.num_vertices().max(b.num_vertices());
    let dim = a.vertex_dim().max(b.vertex_dim());
    let vertex_at = |g: &FeatureGraph, i: usize, d: usize| -> f32 {
        g.vertices
            .get(i)
            .and_then(|v| v.get(d))
            .copied()
            .unwrap_or(0.0)
    };
    let edge_at = |g: &FeatureGraph, i: usize, j: usize| -> f32 {
        g.edges
            .get(i)
            .and_then(|r| r.get(j))
            .copied()
            .unwrap_or(0.0)
    };
    let vertices = (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| lambda * vertex_at(a, i, d) + (1.0 - lambda) * vertex_at(b, i, d))
                .collect()
        })
        .collect();
    let edges = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| lambda * edge_at(a, i, j) + (1.0 - lambda) * edge_at(b, i, j))
                .collect()
        })
        .collect();
    FeatureGraph { vertices, edges }
}

/// Mixup of label vectors (the paper mixes features *and* labels with the
/// same λ).
pub fn mixup_labels(a: &[f64], b: &[f64], lambda: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "label arity mismatch");
    let lambda = lambda.clamp(0.0, 1.0);
    a.iter()
        .zip(b)
        .map(|(&x, &y)| lambda * x + (1.0 - lambda) * y)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, fill: f32) -> FeatureGraph {
        FeatureGraph {
            vertices: vec![vec![fill; 4]; n],
            edges: vec![vec![fill / 2.0; n]; n],
        }
    }

    #[test]
    fn endpoints_reproduce_inputs() {
        let a = graph(2, 1.0);
        let b = graph(2, 3.0);
        assert_eq!(mixup_graphs(&a, &b, 1.0), a);
        assert_eq!(mixup_graphs(&a, &b, 0.0), b);
    }

    #[test]
    fn midpoint_averages() {
        let a = graph(2, 1.0);
        let b = graph(2, 3.0);
        let m = mixup_graphs(&a, &b, 0.5);
        assert!(m.vertices.iter().flatten().all(|&v| (v - 2.0).abs() < 1e-6));
        assert!(m.edges.iter().flatten().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn different_sizes_pad_with_zeros() {
        let a = graph(1, 2.0);
        let b = graph(3, 2.0);
        let m = mixup_graphs(&a, &b, 0.5);
        assert_eq!(m.num_vertices(), 3);
        // Vertex 2 exists only in b: mixed value = 0.5·0 + 0.5·2 = 1.
        assert!((m.vertices[2][0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn label_mixup() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let m = mixup_labels(&a, &b, 0.25);
        assert!((m[0] - 0.25).abs() < 1e-12);
        assert!((m[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lambda_clamped() {
        let a = graph(1, 1.0);
        let b = graph(1, 3.0);
        assert_eq!(mixup_graphs(&a, &b, 7.0), a);
    }
}
