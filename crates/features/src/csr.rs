//! CSR form of a feature graph's symmetrized adjacency.
//!
//! The GIN aggregation (Eq. 5) needs, per layer and per forward, the
//! neighbor sum `Σ_{j∈N(i)} e′_ji · h_j` where neighbors count regardless
//! of FK direction: the effective weight between `i` and `j` is
//! `E[i][j] + E[j][i]`, a **symmetric** matrix. The seed implementation
//! rebuilt that as a dense n×n matrix on every forward of every layer;
//! this module extracts it **once per graph** into compressed sparse rows
//! so the aggregation becomes a sparse-times-dense product
//! (`ce_nn::matrix::spmm_csr`) and — by symmetry — the same structure
//! routes gradients through the transpose in backprop.

use crate::graph::FeatureGraph;
use serde::{Deserialize, Serialize};

/// Symmetrized adjacency in CSR layout (diagonal excluded; the ε-augmented
/// `(1+ε)·I` term is applied by the SpMM kernel as an implicit diagonal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrAdjacency {
    /// Row start offsets, length `n + 1`.
    pub indptr: Vec<usize>,
    /// Column indices, sorted ascending within each row.
    pub indices: Vec<usize>,
    /// Edge weights aligned with `indices`.
    pub weights: Vec<f32>,
}

impl CsrAdjacency {
    /// Extracts the symmetrized adjacency `A[i][j] = E[i][j] + E[j][i]`
    /// (zero diagonal) of a feature graph, keeping only nonzero entries.
    pub fn symmetrized(g: &FeatureGraph) -> Self {
        let n = g.num_vertices();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut weights = Vec::new();
        indptr.push(0);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = g.edges[i][j] + g.edges[j][i];
                if w != 0.0 {
                    indices.push(j);
                    weights.push(w);
                }
            }
            indptr.push(indices.len());
        }
        CsrAdjacency {
            indptr,
            indices,
            weights,
        }
    }

    /// Block-diagonal concatenation: stacks the adjacencies of `parts` into
    /// one CSR over the union of their vertices, graph `g`'s vertex `v`
    /// becoming global row `offset(g) + v`. Within every row the column
    /// indices keep their relative order (shifted by the block base), so a
    /// SpMM over the stacked matrix visits exactly the entries a per-graph
    /// SpMM would, in the same order — the batch-stacked serving path is
    /// bit-identical to the per-graph path by construction.
    pub fn stack(parts: &[&CsrAdjacency]) -> CsrAdjacency {
        let total_n: usize = parts.iter().map(|p| p.num_vertices()).sum();
        let total_nnz: usize = parts.iter().map(|p| p.nnz()).sum();
        let mut indptr = Vec::with_capacity(total_n + 1);
        let mut indices = Vec::with_capacity(total_nnz);
        let mut weights = Vec::with_capacity(total_nnz);
        indptr.push(0);
        let mut vertex_base = 0usize;
        let mut nnz_base = 0usize;
        for part in parts {
            indptr.extend(part.indptr[1..].iter().map(|&p| nnz_base + p));
            indices.extend(part.indices.iter().map(|&j| vertex_base + j));
            weights.extend_from_slice(&part.weights);
            vertex_base += part.num_vertices();
            nnz_base += part.nnz();
        }
        CsrAdjacency {
            indptr,
            indices,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of stored (nonzero, off-diagonal) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrization_and_layout() {
        let g = FeatureGraph {
            vertices: vec![vec![0.0]; 3],
            edges: vec![
                vec![0.0, 0.7, 0.0],
                vec![0.2, 0.0, 0.0],
                vec![0.0, 0.5, 0.0],
            ],
        };
        let csr = CsrAdjacency::symmetrized(&g);
        assert_eq!(csr.num_vertices(), 3);
        // Vertex 0 <-> 1 with weight 0.9, vertex 1 <-> 2 with weight 0.5.
        assert_eq!(csr.indptr, vec![0, 1, 3, 4]);
        assert_eq!(csr.indices, vec![1, 0, 2, 1]);
        let expect = [0.9f32, 0.9, 0.5, 0.5];
        for (w, e) in csr.weights.iter().zip(expect) {
            assert!((w - e).abs() < 1e-6);
        }
        assert_eq!(csr.nnz(), 4);
    }

    /// On random graphs, the CSR + implicit-diagonal SpMM must reproduce
    /// the dense textbook formula `((1+ε)I + A)·H` exactly.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn csr_aggregation_matches_dense_formula_on_random_graphs() {
        use ce_nn::matrix::spmm_csr;
        use ce_nn::Matrix;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(0xc58);
        for trial in 0..50 {
            let n = rng.gen_range(1usize..=8);
            let dim = rng.gen_range(1usize..=12);
            let eps: f32 = rng.gen_range(-0.5f32..0.5);
            let mut edges = vec![vec![0.0f32; n]; n];
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.gen::<f32>() < 0.4 {
                        edges[i][j] = rng.gen_range(0.05f32..1.0);
                    }
                }
            }
            let vertices: Vec<Vec<f32>> = (0..n)
                .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..=1.0)).collect())
                .collect();
            let g = FeatureGraph {
                vertices: vertices.clone(),
                edges: edges.clone(),
            };
            let csr = CsrAdjacency::symmetrized(&g);

            // Dense reference: (1+eps)I + (E + Eᵀ), zero diagonal on A.
            let mut dense = Matrix::zeros(n, n);
            for i in 0..n {
                *dense.get_mut(i, i) = 1.0 + eps;
                for j in 0..n {
                    if i != j {
                        *dense.get_mut(i, j) = edges[i][j] + edges[j][i];
                    }
                }
            }
            let h = Matrix::from_row_slices(&vertices);
            let expect = dense.matmul(&h);
            let mut out = Matrix::zeros(n, dim);
            spmm_csr(
                &csr.indptr,
                &csr.indices,
                &csr.weights,
                1.0 + eps,
                &h,
                &mut out,
            );
            assert_eq!(out, expect, "trial {trial}: n={n} dim={dim}");
        }
    }

    #[test]
    fn stack_produces_block_diagonal_layout() {
        let a = CsrAdjacency {
            indptr: vec![0, 1, 2],
            indices: vec![1, 0],
            weights: vec![0.9, 0.9],
        };
        let empty = CsrAdjacency {
            indptr: vec![0],
            indices: vec![],
            weights: vec![],
        };
        let b = CsrAdjacency {
            indptr: vec![0, 0, 1],
            indices: vec![0],
            weights: vec![0.4],
        };
        let stacked = CsrAdjacency::stack(&[&a, &empty, &b]);
        assert_eq!(stacked.num_vertices(), 4);
        assert_eq!(stacked.indptr, vec![0, 1, 2, 2, 3]);
        // b's vertex 0 shifts past a's two vertices (empty adds none).
        assert_eq!(stacked.indices, vec![1, 0, 2]);
        assert_eq!(stacked.weights, vec![0.9, 0.9, 0.4]);
        assert_eq!(CsrAdjacency::stack(&[]).num_vertices(), 0);
    }

    /// Block-diagonal SpMM over a stacked CSR must be bit-identical to
    /// per-graph SpMM for random graph sets — including empty and
    /// single-vertex graphs, which stack to zero-width blocks.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn stacked_spmm_is_bitwise_per_graph_spmm() {
        use ce_nn::matrix::spmm_csr;
        use ce_nn::Matrix;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        proptest! {
            fn prop(seed in 0u64..1_000_000, num_graphs in 0usize..=6, dim in 1usize..=9) {
                let mut rng = StdRng::seed_from_u64(seed);
                let eps: f32 = rng.gen_range(-0.5f32..0.5);
                let graphs: Vec<FeatureGraph> = (0..num_graphs)
                    .map(|_| {
                        // 0 = empty graph, 1 = single vertex; both must stack.
                        let n = rng.gen_range(0usize..=5);
                        let mut edges = vec![vec![0.0f32; n]; n];
                        for i in 0..n {
                            for j in 0..n {
                                if i != j && rng.gen::<f32>() < 0.4 {
                                    edges[i][j] = rng.gen_range(0.05f32..1.0);
                                }
                            }
                        }
                        let vertices = (0..n)
                            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..=1.0)).collect())
                            .collect();
                        FeatureGraph { vertices, edges }
                    })
                    .collect();
                let csrs: Vec<CsrAdjacency> =
                    graphs.iter().map(CsrAdjacency::symmetrized).collect();
                let refs: Vec<&CsrAdjacency> = csrs.iter().collect();
                let stacked = CsrAdjacency::stack(&refs);
                let total_n: usize = graphs.iter().map(FeatureGraph::num_vertices).sum();
                prop_assert_eq!(stacked.num_vertices(), total_n);

                // Stacked vertex matrix and one big SpMM.
                let mut data = Vec::new();
                for g in &graphs {
                    for v in &g.vertices {
                        data.extend_from_slice(v);
                    }
                }
                let h = Matrix { rows: total_n, cols: dim, data };
                let mut out = Matrix::zeros(total_n, dim);
                spmm_csr(
                    &stacked.indptr,
                    &stacked.indices,
                    &stacked.weights,
                    1.0 + eps,
                    &h,
                    &mut out,
                );

                // Per-graph SpMMs must reproduce the matching row blocks.
                let mut base = 0usize;
                for (g, csr) in graphs.iter().zip(&csrs) {
                    let n = g.num_vertices();
                    let hg = Matrix::from_row_slices(&g.vertices);
                    let hg = if n == 0 { Matrix::zeros(0, dim) } else { hg };
                    let mut og = Matrix::zeros(n, dim);
                    spmm_csr(&csr.indptr, &csr.indices, &csr.weights, 1.0 + eps, &hg, &mut og);
                    prop_assert_eq!(
                        &out.data[base * dim..(base + n) * dim],
                        og.data.as_slice()
                    );
                    base += n;
                }
            }
        }
        prop();
    }

    #[test]
    fn empty_graph() {
        let g = FeatureGraph {
            vertices: vec![],
            edges: vec![],
        };
        let csr = CsrAdjacency::symmetrized(&g);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.nnz(), 0);
    }
}
