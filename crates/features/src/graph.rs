//! Feature extraction and graph modeling.

use ce_storage::stats::{equality_rate, join_correlation, ColumnStats};
use ce_storage::Dataset;
use serde::{Deserialize, Serialize};

/// Number of per-column statistics (`k` in the paper): skewness, kurtosis,
/// standard deviation, mean deviation, range, domain size.
pub const COLUMN_FEATURES: usize = 6;

/// Global featurization parameters. Every dataset fed to one graph encoder
/// must share the config so vertex vectors have equal width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// `m`: maximum number of data columns represented per table; extra
    /// columns are ignored, missing ones are zero-padded.
    pub max_columns: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { max_columns: 6 }
    }
}

impl FeatureConfig {
    /// Width of each vertex vector: `(k + m)·m + 2`.
    pub fn vertex_dim(&self) -> usize {
        (COLUMN_FEATURES + self.max_columns) * self.max_columns + 2
    }
}

/// A dataset modeled as a feature graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureGraph {
    /// Vertex matrix `V`, one row per table, each of width
    /// [`FeatureConfig::vertex_dim`].
    pub vertices: Vec<Vec<f32>>,
    /// Edge matrix `E` (`n × n`): `E[i][j]` holds the join correlation when
    /// a FK in table `j` references the PK of table `i`, else 0.
    pub edges: Vec<Vec<f32>>,
}

impl FeatureGraph {
    /// Number of vertices (tables).
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Vertex feature width.
    pub fn vertex_dim(&self) -> usize {
        self.vertices.first().map_or(0, Vec::len)
    }
}

/// Squashes an unbounded statistic into `(-1, 1)`.
#[inline]
fn squash(v: f64) -> f32 {
    (v / (1.0 + v.abs())) as f32
}

/// Log-scale normalization for counts/ranges (maps `[0, ∞)` into `[0, ~1]`).
#[inline]
fn log_norm(v: f64) -> f32 {
    ((v.max(0.0) + 1.0).ln() / 20.0) as f32
}

/// Extracts the feature graph of a dataset (§V-A, Figure 4).
pub fn extract_features(ds: &Dataset, cfg: &FeatureConfig) -> FeatureGraph {
    let m = cfg.max_columns;
    let per_col = COLUMN_FEATURES + m;
    let mut vertices = Vec::with_capacity(ds.num_tables());
    for table in &ds.tables {
        let data_cols = table.data_column_indices();
        let used = data_cols.len().min(m);
        let mut v = vec![0.0f32; cfg.vertex_dim()];
        for (slot, &c) in data_cols.iter().take(m).enumerate() {
            let col = &table.columns[c];
            let s = ColumnStats::compute(col);
            let base = slot * per_col;
            v[base] = squash(s.skewness);
            v[base + 1] = squash(s.kurtosis);
            v[base + 2] = squash(s.std_dev / s.range().max(1.0));
            v[base + 3] = squash(s.mean_dev / s.range().max(1.0));
            v[base + 4] = log_norm(s.range());
            v[base + 5] = log_norm(s.ndv as f64);
            // Correlation slots against the other (first m) columns.
            for (other_slot, &oc) in data_cols.iter().take(used).enumerate() {
                if other_slot == slot {
                    continue;
                }
                v[base + COLUMN_FEATURES + other_slot] =
                    equality_rate(col, &table.columns[oc]) as f32;
            }
        }
        let tail = cfg.vertex_dim() - 2;
        v[tail] = log_norm(table.num_rows() as f64);
        v[tail + 1] = used as f32 / m as f32;
        vertices.push(v);
    }

    let n = ds.num_tables();
    let mut edges = vec![vec![0.0f32; n]; n];
    for e in &ds.joins {
        edges[e.pk_table][e.fk_table] = join_correlation(ds, e) as f32;
    }
    FeatureGraph { vertices, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec, SpecRange};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vertex_dim_formula() {
        let cfg = FeatureConfig { max_columns: 4 };
        // Example 3 of the paper: (6 + 4)·4 + 2 = 42.
        assert_eq!(cfg.vertex_dim(), 42);
    }

    #[test]
    fn graph_shape_matches_dataset() {
        let mut rng = StdRng::seed_from_u64(191);
        let ds = generate_dataset("fg", &DatasetSpec::small().multi_table(), &mut rng);
        let cfg = FeatureConfig::default();
        let g = extract_features(&ds, &cfg);
        assert_eq!(g.num_vertices(), ds.num_tables());
        assert_eq!(g.vertex_dim(), cfg.vertex_dim());
        assert_eq!(g.edges.len(), ds.num_tables());
        // One nonzero edge entry per join.
        let nonzero: usize = g.edges.iter().flatten().filter(|&&w| w > 0.0).count();
        assert_eq!(nonzero, ds.joins.len());
        // Edge orientation: E[pk][fk].
        for e in &ds.joins {
            assert!(g.edges[e.pk_table][e.fk_table] > 0.0);
            assert_eq!(g.edges[e.fk_table][e.pk_table], 0.0);
        }
    }

    #[test]
    fn skew_feature_tracks_generated_skew() {
        let make = |skew: f64, seed: u64| {
            let mut spec = DatasetSpec::small().single_table();
            spec.skew = SpecRange { lo: skew, hi: skew };
            spec.columns = SpecRange { lo: 1, hi: 1 };
            spec.rows = SpecRange {
                lo: 4_000,
                hi: 4_000,
            };
            spec.domain = SpecRange {
                lo: 1_000,
                hi: 1_000,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let ds = generate_dataset("sk", &spec, &mut rng);
            extract_features(&ds, &FeatureConfig::default()).vertices[0][0]
        };
        let low = make(0.0, 1);
        let high = make(0.95, 1);
        assert!(
            high > low + 0.1,
            "skew feature should rise with generated skew: {low} vs {high}"
        );
    }

    #[test]
    fn correlation_feature_tracks_generated_correlation() {
        let make = |corr: f64| {
            let mut spec = DatasetSpec::small().single_table();
            spec.correlation = SpecRange { lo: corr, hi: corr };
            spec.columns = SpecRange { lo: 2, hi: 2 };
            spec.rows = SpecRange {
                lo: 3_000,
                hi: 3_000,
            };
            let mut rng = StdRng::seed_from_u64(7);
            let ds = generate_dataset("cr", &spec, &mut rng);
            let g = extract_features(&ds, &FeatureConfig::default());
            // Correlation slot of column 0 against column 1.
            g.vertices[0][COLUMN_FEATURES + 1]
        };
        let none = make(0.0);
        let full = make(1.0);
        assert!(none < 0.1, "uncorrelated eq-rate {none}");
        // r = 1 places 0.7 of the correlation mass on the adjacent column
        // (the rest feeds the generator's v-structures).
        assert!(full > 0.6, "correlated eq-rate {full}");
    }

    #[test]
    fn padding_for_narrow_tables() {
        let mut spec = DatasetSpec::small().single_table();
        spec.columns = SpecRange { lo: 1, hi: 1 };
        let mut rng = StdRng::seed_from_u64(193);
        let ds = generate_dataset("pad", &spec, &mut rng);
        let cfg = FeatureConfig { max_columns: 5 };
        let g = extract_features(&ds, &cfg);
        let per_col = COLUMN_FEATURES + 5;
        // Slots for columns 1..5 are all zero.
        let v = &g.vertices[0];
        for slot in 1..5 {
            let base = slot * per_col;
            assert!(v[base..base + per_col].iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn all_features_are_finite_and_bounded() {
        let mut rng = StdRng::seed_from_u64(194);
        for _ in 0..10 {
            let ds = generate_dataset("b", &DatasetSpec::small(), &mut rng);
            let g = extract_features(&ds, &FeatureConfig::default());
            for v in &g.vertices {
                assert!(v.iter().all(|x| x.is_finite() && x.abs() <= 2.0));
            }
        }
    }
}
