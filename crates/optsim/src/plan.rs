//! Physical plan representation.

use ce_storage::JoinEdge;
use serde::{Deserialize, Serialize};

/// Scan operator choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanMethod {
    /// Full sequential scan with predicate evaluation.
    Sequential,
    /// Index range scan on one predicate column, residual filtering after.
    Index {
        /// Which predicate (index into the query's predicate list) drives
        /// the index lookup.
        predicate: usize,
    },
}

/// Join operator choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinMethod {
    /// Build/probe hash join (build side = left child).
    Hash,
    /// Nested-loop join.
    NestedLoop,
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Filtered base-table access.
    Scan {
        /// Dataset table index.
        table: usize,
        /// Access method.
        method: ScanMethod,
        /// Optimizer's estimated output rows.
        est_rows: f64,
    },
    /// Binary join of two sub-plans.
    Join {
        /// Build / outer side.
        left: Box<PlanNode>,
        /// Probe / inner side.
        right: Box<PlanNode>,
        /// Operator.
        method: JoinMethod,
        /// The PK-FK edge being joined.
        edge: JoinEdge,
        /// Optimizer's estimated output rows.
        est_rows: f64,
    },
}

impl PlanNode {
    /// Estimated output cardinality of the node.
    pub fn est_rows(&self) -> f64 {
        match self {
            PlanNode::Scan { est_rows, .. } | PlanNode::Join { est_rows, .. } => *est_rows,
        }
    }

    /// Tables covered by the subtree, in plan order.
    pub fn tables(&self) -> Vec<usize> {
        match self {
            PlanNode::Scan { table, .. } => vec![*table],
            PlanNode::Join { left, right, .. } => {
                let mut t = left.tables();
                t.extend(right.tables());
                t
            }
        }
    }

    /// Number of join operators in the plan.
    pub fn num_joins(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 0,
            PlanNode::Join { left, right, .. } => 1 + left.num_joins() + right.num_joins(),
        }
    }

    /// Pretty one-line rendering (for debugging and EXPLAIN-style output).
    pub fn explain(&self) -> String {
        match self {
            PlanNode::Scan {
                table,
                method,
                est_rows,
            } => {
                let m = match method {
                    ScanMethod::Sequential => "SeqScan",
                    ScanMethod::Index { .. } => "IndexScan",
                };
                format!("{m}(t{table} ~{est_rows:.0})")
            }
            PlanNode::Join {
                left,
                right,
                method,
                est_rows,
                ..
            } => {
                let m = match method {
                    JoinMethod::Hash => "HashJoin",
                    JoinMethod::NestedLoop => "NLJoin",
                };
                format!(
                    "{m}[{} , {} ~{est_rows:.0}]",
                    left.explain(),
                    right.explain()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(t: usize) -> PlanNode {
        PlanNode::Scan {
            table: t,
            method: ScanMethod::Sequential,
            est_rows: 10.0,
        }
    }

    #[test]
    fn tree_accessors() {
        let edge = JoinEdge {
            fk_table: 1,
            fk_col: 0,
            pk_table: 0,
            pk_col: 0,
        };
        let plan = PlanNode::Join {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            method: JoinMethod::Hash,
            edge,
            est_rows: 42.0,
        };
        assert_eq!(plan.est_rows(), 42.0);
        assert_eq!(plan.tables(), vec![0, 1]);
        assert_eq!(plan.num_joins(), 1);
        assert!(plan.explain().contains("HashJoin"));
        assert!(plan.explain().contains("SeqScan"));
    }
}
