//! End-to-end latency measurement (the Table V harness).
//!
//! For every query: (1) the injected estimator prices all sub-plans —
//! measured as *inference latency*; (2) the optimizer builds the plan;
//! (3) the plan executes on the engine — measured as *running time*. The
//! paper reports both components separately, as does [`E2eReport`].

use crate::execute::execute_plan;
use crate::index::DatasetIndexes;
use crate::optimize::optimize_query;
use ce_models::{CardEstimator, ModelKind};
use ce_storage::exec::query_cardinality;
use ce_storage::{Dataset, Query};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Oracle estimator: exact cardinalities (the "TrueCard" row of Table V).
pub struct TrueCardEstimator {
    ds: Dataset,
}

impl TrueCardEstimator {
    /// Snapshot the dataset for exact counting.
    pub fn new(ds: &Dataset) -> Self {
        TrueCardEstimator { ds: ds.clone() }
    }
}

impl CardEstimator for TrueCardEstimator {
    fn kind(&self) -> ModelKind {
        // Reported under its own name by the harness; kind is unused.
        ModelKind::Postgres
    }

    fn name(&self) -> &'static str {
        "TrueCard"
    }

    fn estimate(&self, query: &Query) -> f64 {
        query_cardinality(&self.ds, query).unwrap_or(0) as f64
    }
}

/// Aggregate end-to-end measurements for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2eReport {
    /// Estimator name.
    pub estimator: String,
    /// Total plan-execution time (seconds).
    pub execution_secs: f64,
    /// Total cardinality-inference time (seconds).
    pub inference_secs: f64,
    /// Number of queries executed.
    pub queries: usize,
    /// Total result rows (sanity check: identical across estimators).
    pub total_rows: u64,
}

impl E2eReport {
    /// Total end-to-end time: execution + inference.
    pub fn total_secs(&self) -> f64 {
        self.execution_secs + self.inference_secs
    }

    /// Improvement of `self` relative to a baseline total, as a fraction
    /// (positive = faster), matching Table V's "Improvement" column.
    pub fn improvement_over(&self, baseline: &E2eReport) -> f64 {
        if baseline.total_secs() <= 0.0 {
            return 0.0;
        }
        (baseline.total_secs() - self.total_secs()) / baseline.total_secs()
    }
}

/// Runs a workload end-to-end with the injected estimator.
pub fn run_workload(
    ds: &Dataset,
    queries: &[Query],
    estimator: &dyn CardEstimator,
    indexes: &DatasetIndexes,
) -> E2eReport {
    let mut execution_secs = 0.0f64;
    let mut inference_secs = 0.0f64;
    let mut total_rows = 0u64;
    for q in queries {
        let t0 = Instant::now();
        let plan = optimize_query(ds, q, estimator, indexes);
        inference_secs += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let out = execute_plan(ds, q, &plan, indexes);
        execution_secs += t1.elapsed().as_secs_f64();
        total_rows += out.len() as u64;
    }
    E2eReport {
        estimator: estimator.name().to_string(),
        execution_secs,
        inference_secs,
        queries: queries.len(),
        total_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use ce_models::postgres::PostgresEstimator;
    use ce_workload::{generate_workload, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reports_are_consistent_across_estimators() {
        let mut rng = StdRng::seed_from_u64(281);
        let ds = generate_dataset("e2e", &DatasetSpec::small().multi_table(), &mut rng);
        let indexes = DatasetIndexes::build(&ds);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 15,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        let oracle = TrueCardEstimator::new(&ds);
        let pg = PostgresEstimator::analyze(&ds);
        let r1 = run_workload(&ds, &queries, &oracle, &indexes);
        let r2 = run_workload(&ds, &queries, &pg, &indexes);
        // Same answers regardless of planning quality.
        assert_eq!(r1.total_rows, r2.total_rows);
        assert_eq!(r1.queries, 15);
        assert!(r1.execution_secs > 0.0 && r1.inference_secs > 0.0);
        assert_eq!(r1.estimator, "TrueCard");
        assert_eq!(r2.estimator, "Postgres");
        // Improvement is antisymmetric-ish around zero.
        let imp = r2.improvement_over(&r1);
        assert!(imp.abs() < 10.0);
    }
}
