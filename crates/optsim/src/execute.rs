//! Physical plan execution against the in-memory engine.
//!
//! Scans really scan (or really probe the index), joins really build hash
//! tables or run nested loops — so a plan chosen from bad estimates pays
//! real wall-clock time, which is what the Table V experiment measures.

use crate::index::DatasetIndexes;
use crate::plan::{JoinMethod, PlanNode, ScanMethod};
use ce_storage::exec::{filter_table, hash_join, nested_loop_join, JoinedRows};
use ce_storage::{Dataset, Query};

/// Executes a plan, returning the materialized intermediate result.
pub fn execute_plan(
    ds: &Dataset,
    query: &Query,
    plan: &PlanNode,
    indexes: &DatasetIndexes,
) -> JoinedRows {
    match plan {
        PlanNode::Scan { table, method, .. } => {
            let preds = query.predicates_on(*table);
            let rows = match method {
                ScanMethod::Sequential => filter_table(&ds.tables[*table], &preds),
                ScanMethod::Index { predicate } => {
                    let driver = &query.predicates[*predicate];
                    debug_assert_eq!(driver.table, *table);
                    let candidates = indexes
                        .lookup(driver)
                        .expect("optimizer only picks existing indexes");
                    // Residual filtering with the remaining predicates.
                    let residual: Vec<_> = preds
                        .iter()
                        .copied()
                        .filter(|p| {
                            !(p.table == driver.table
                                && p.column == driver.column
                                && p.lo == driver.lo
                                && p.hi == driver.hi)
                        })
                        .collect();
                    candidates
                        .into_iter()
                        .filter(|&r| {
                            residual.iter().all(|p| {
                                p.matches(ds.tables[*table].columns[p.column].data[r as usize])
                            })
                        })
                        .collect()
                }
            };
            JoinedRows::from_selection(*table, rows)
        }
        PlanNode::Join {
            left,
            right,
            method,
            edge,
            ..
        } => {
            let l = execute_plan(ds, query, left, indexes);
            let r = execute_plan(ds, query, right, indexes);
            // Locate key columns on each side.
            let (l_table, l_col, r_table, r_col) = if l.position(edge.fk_table).is_some() {
                (edge.fk_table, edge.fk_col, edge.pk_table, edge.pk_col)
            } else {
                (edge.pk_table, edge.pk_col, edge.fk_table, edge.fk_col)
            };
            let lpos = l.position(l_table).expect("left side holds its table");
            let rpos = r.position(r_table).expect("right side holds its table");
            let lkey = (lpos, &ds.tables[l_table], l_col);
            let rkey = (rpos, &ds.tables[r_table], r_col);
            match method {
                JoinMethod::Hash => hash_join(&l, lkey, &r, rkey),
                JoinMethod::NestedLoop => nested_loop_join(&l, lkey, &r, rkey),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::e2e::TrueCardEstimator;
    use crate::optimize::optimize_query;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use ce_storage::exec::query_cardinality;
    use ce_workload::{generate_workload, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Whatever plan the optimizer picks, execution must return exactly the
    /// true cardinality — operator choice affects cost, never correctness.
    #[test]
    fn execution_matches_exact_count_under_any_estimator() {
        let mut rng = StdRng::seed_from_u64(271);
        let ds = generate_dataset("ex", &DatasetSpec::small().multi_table(), &mut rng);
        let indexes = DatasetIndexes::build(&ds);
        let est = TrueCardEstimator::new(&ds);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 25,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        for q in &queries {
            let plan = optimize_query(&ds, q, &est, &indexes);
            let out = execute_plan(&ds, q, &plan, &indexes);
            let truth = query_cardinality(&ds, q).unwrap();
            assert_eq!(out.len() as u64, truth, "plan {}", plan.explain());
        }
    }

    /// Deliberately bad estimates still yield correct results.
    #[test]
    fn wrong_estimates_change_plans_not_answers() {
        struct ConstantEstimator;
        impl ce_models::CardEstimator for ConstantEstimator {
            fn kind(&self) -> ce_models::ModelKind {
                ce_models::ModelKind::Postgres
            }
            fn estimate(&self, _q: &ce_storage::Query) -> f64 {
                1.0 // everything looks tiny → nested loops everywhere
            }
        }
        let mut rng = StdRng::seed_from_u64(272);
        let ds = generate_dataset("ex2", &DatasetSpec::small().multi_table(), &mut rng);
        let indexes = DatasetIndexes::build(&ds);
        let est = ConstantEstimator;
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 10,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        for q in &queries {
            let plan = optimize_query(&ds, q, &est, &indexes);
            let out = execute_plan(&ds, q, &plan, &indexes);
            let truth = query_cardinality(&ds, q).unwrap();
            assert_eq!(out.len() as u64, truth);
        }
    }
}
