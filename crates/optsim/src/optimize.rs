//! Dynamic-programming plan selection from injected cardinality estimates.
//!
//! For every connected subset of the query's join tree the optimizer asks
//! the injected estimator for the sub-plan cardinality (the paper: "invoke
//! each CE model to estimate the cardinalities of all sub-plan queries"),
//! then builds the cheapest plan bottom-up, choosing scan methods, join
//! order and join operators from the cost model.

use crate::cost;
use crate::index::DatasetIndexes;
use crate::plan::{JoinMethod, PlanNode, ScanMethod};
use ce_models::CardEstimator;
use ce_storage::{Dataset, Query};
use std::collections::HashMap;

/// Optimizes `query` into a physical plan using `estimator`'s cardinalities.
///
/// The query must validate against `ds` (connected join tree).
pub fn optimize_query(
    ds: &Dataset,
    query: &Query,
    estimator: &dyn CardEstimator,
    indexes: &DatasetIndexes,
) -> PlanNode {
    let tables = &query.tables;
    let n = tables.len();
    assert!((1..=20).contains(&n), "plan DP supports 1..=20 tables");
    let pos: HashMap<usize, usize> = tables.iter().enumerate().map(|(i, &t)| (t, i)).collect();

    // Estimate cache per subset mask.
    let mut est_cache: HashMap<u32, f64> = HashMap::new();
    let mut estimate = |mask: u32| -> f64 {
        if let Some(&v) = est_cache.get(&mask) {
            return v;
        }
        let sub = subquery(query, tables, mask);
        let v = estimator.estimate(&sub).max(1.0);
        est_cache.insert(mask, v);
        v
    };

    // Base scans.
    let mut dp: HashMap<u32, (f64, PlanNode)> = HashMap::new();
    for (i, &t) in tables.iter().enumerate() {
        let mask = 1u32 << i;
        let est_out = estimate(mask);
        let table_rows = ds.tables[t].num_rows() as f64;
        let mut best = (
            cost::seq_scan_cost(table_rows, est_out),
            PlanNode::Scan {
                table: t,
                method: ScanMethod::Sequential,
                est_rows: est_out,
            },
        );
        // Consider an index scan driven by each indexed predicate.
        for (pi, p) in query.predicates.iter().enumerate() {
            if p.table != t || !indexes.has(p.table, p.column) {
                continue;
            }
            // Estimated rows touched by the index = selectivity of this one
            // predicate alone.
            let single = Query::single_table(t, vec![*p]);
            let idx_rows = estimator.estimate(&single).max(1.0);
            let c = cost::index_scan_cost(idx_rows, est_out);
            if c < best.0 {
                best = (
                    c,
                    PlanNode::Scan {
                        table: t,
                        method: ScanMethod::Index { predicate: pi },
                        est_rows: est_out,
                    },
                );
            }
        }
        dp.insert(mask, best);
    }

    if n == 1 {
        return dp.remove(&1).expect("single scan planned").1;
    }

    // Join edges in local index space.
    let edges: Vec<(usize, usize)> = query
        .joins
        .iter()
        .map(|&(a, b)| (pos[&a], pos[&b]))
        .collect();

    // Enumerate masks by popcount.
    let full: u32 = (1u32 << n) - 1;
    let mut masks: Vec<u32> = (1..=full).filter(|m| m.count_ones() >= 2).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        if !connected(mask, &edges) {
            continue;
        }
        let est_out = estimate(mask);
        let mut best: Option<(f64, PlanNode)> = None;
        for (ei, &(a, b)) in edges.iter().enumerate() {
            if mask & (1 << a) == 0 || mask & (1 << b) == 0 {
                continue;
            }
            // Removing this edge splits the (tree-shaped) mask in two.
            let left_mask = component(mask, a, &edges, ei);
            let right_mask = mask & !left_mask;
            if right_mask == 0 || right_mask & (1 << b) == 0 {
                continue;
            }
            let Some((lc, lplan)) = dp.get(&left_mask) else {
                continue;
            };
            let Some((rc, rplan)) = dp.get(&right_mask) else {
                continue;
            };
            let lrows = lplan.est_rows();
            let rrows = rplan.est_rows();
            let edge = *ds
                .join_between(query.tables[a], query.tables[b])
                .expect("validated query edge");
            // Four physical alternatives.
            let candidates = [
                (
                    cost::hash_join_cost(lrows, rrows, est_out),
                    JoinMethod::Hash,
                    false,
                ),
                (
                    cost::hash_join_cost(rrows, lrows, est_out),
                    JoinMethod::Hash,
                    true,
                ),
                (
                    cost::nested_loop_cost(lrows, rrows, est_out),
                    JoinMethod::NestedLoop,
                    false,
                ),
            ];
            for &(jc, method, swap) in &candidates {
                let total = lc + rc + jc;
                if best.as_ref().is_none_or(|(c, _)| total < *c) {
                    let (bl, br) = if swap {
                        (rplan.clone(), lplan.clone())
                    } else {
                        (lplan.clone(), rplan.clone())
                    };
                    best = Some((
                        total,
                        PlanNode::Join {
                            left: Box::new(bl),
                            right: Box::new(br),
                            method,
                            edge,
                            est_rows: est_out,
                        },
                    ));
                }
            }
        }
        if let Some(b) = best {
            dp.insert(mask, b);
        }
    }

    dp.remove(&full).expect("connected query has a full plan").1
}

/// Builds the sub-query of the tables selected by `mask`.
fn subquery(query: &Query, tables: &[usize], mask: u32) -> Query {
    let sel: Vec<usize> = tables
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, &t)| t)
        .collect();
    let joins = query
        .joins
        .iter()
        .copied()
        .filter(|&(a, b)| sel.contains(&a) && sel.contains(&b))
        .collect();
    let predicates = query
        .predicates
        .iter()
        .copied()
        .filter(|p| sel.contains(&p.table))
        .collect();
    Query {
        tables: sel,
        joins,
        predicates,
    }
}

/// Connectivity of `mask` under the local edge list.
fn connected(mask: u32, edges: &[(usize, usize)]) -> bool {
    let start = mask.trailing_zeros() as usize;
    let reach = component(mask, start, edges, usize::MAX);
    reach == mask
}

/// The connected component of `start` inside `mask`, ignoring edge
/// `skip_edge`.
fn component(mask: u32, start: usize, edges: &[(usize, usize)], skip_edge: usize) -> u32 {
    let mut reach = 1u32 << start;
    let mut grew = true;
    while grew {
        grew = false;
        for (ei, &(a, b)) in edges.iter().enumerate() {
            if ei == skip_edge {
                continue;
            }
            let (ma, mb) = (1u32 << a, 1u32 << b);
            if mask & ma == 0 || mask & mb == 0 {
                continue;
            }
            if reach & ma != 0 && reach & mb == 0 {
                reach |= mb;
                grew = true;
            } else if reach & mb != 0 && reach & ma == 0 {
                reach |= ma;
                grew = true;
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::e2e::TrueCardEstimator;
    use ce_datagen::{generate_dataset, DatasetSpec};
    use ce_workload::{generate_workload, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plans_cover_all_query_tables() {
        let mut rng = StdRng::seed_from_u64(261);
        let ds = generate_dataset("opt", &DatasetSpec::small().multi_table(), &mut rng);
        let est = TrueCardEstimator::new(&ds);
        let indexes = DatasetIndexes::build(&ds);
        let queries = generate_workload(
            &ds,
            &WorkloadSpec {
                num_queries: 30,
                ..WorkloadSpec::default()
            },
            &mut rng,
        );
        for q in &queries {
            let plan = optimize_query(&ds, q, &est, &indexes);
            let mut pt = plan.tables();
            pt.sort_unstable();
            let mut qt = q.tables.clone();
            qt.sort_unstable();
            assert_eq!(pt, qt);
            assert_eq!(plan.num_joins(), q.joins.len());
        }
    }

    #[test]
    fn selective_predicate_prefers_index_scan() {
        let mut rng = StdRng::seed_from_u64(262);
        let mut spec = DatasetSpec::small().single_table();
        spec.rows = ce_datagen::SpecRange {
            lo: 5_000,
            hi: 5_000,
        };
        spec.domain = ce_datagen::SpecRange {
            lo: 5_000,
            hi: 5_000,
        };
        spec.skew = ce_datagen::SpecRange { lo: 0.0, hi: 0.0 };
        let ds = generate_dataset("idx", &spec, &mut rng);
        let est = TrueCardEstimator::new(&ds);
        let indexes = DatasetIndexes::build(&ds);
        let q = Query::single_table(
            0,
            vec![ce_storage::Predicate {
                table: 0,
                column: 0,
                lo: 1,
                hi: 5,
            }],
        );
        let plan = optimize_query(&ds, &q, &est, &indexes);
        assert!(
            matches!(
                plan,
                PlanNode::Scan {
                    method: ScanMethod::Index { .. },
                    ..
                }
            ),
            "expected index scan, got {}",
            plan.explain()
        );
        // Unselective predicate → sequential scan.
        let q2 = Query::single_table(
            0,
            vec![ce_storage::Predicate {
                table: 0,
                column: 0,
                lo: 1,
                hi: 4_900,
            }],
        );
        let plan2 = optimize_query(&ds, &q2, &est, &indexes);
        assert!(
            matches!(
                plan2,
                PlanNode::Scan {
                    method: ScanMethod::Sequential,
                    ..
                }
            ),
            "expected seq scan, got {}",
            plan2.explain()
        );
    }
}
