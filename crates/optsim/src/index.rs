//! Per-column sorted indexes (built once per dataset, like `CREATE INDEX`).

use ce_storage::{Dataset, Predicate, Value};
use std::collections::HashMap;

/// Sorted `(value, row)` indexes for every data column of a dataset.
pub struct DatasetIndexes {
    /// Keyed by `(table, column)`.
    indexes: HashMap<(usize, usize), Vec<(Value, u32)>>,
}

impl DatasetIndexes {
    /// Builds indexes over all data columns.
    pub fn build(ds: &Dataset) -> Self {
        let mut indexes = HashMap::new();
        for (t, table) in ds.tables.iter().enumerate() {
            for c in table.data_column_indices() {
                let mut idx: Vec<(Value, u32)> = table.columns[c]
                    .data
                    .iter()
                    .enumerate()
                    .map(|(r, &v)| (v, r as u32))
                    .collect();
                idx.sort_unstable();
                indexes.insert((t, c), idx);
            }
        }
        DatasetIndexes { indexes }
    }

    /// True if an index exists for the column.
    pub fn has(&self, table: usize, column: usize) -> bool {
        self.indexes.contains_key(&(table, column))
    }

    /// Row ids matching `predicate` via binary search over the sorted index
    /// (rows come back unsorted relative to the table).
    pub fn lookup(&self, predicate: &Predicate) -> Option<Vec<u32>> {
        let idx = self.indexes.get(&(predicate.table, predicate.column))?;
        let start = idx.partition_point(|&(v, _)| v < predicate.lo);
        let end = idx.partition_point(|&(v, _)| v <= predicate.hi);
        Some(idx[start..end].iter().map(|&(_, r)| r).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_storage::{Column, Table};

    #[test]
    fn lookup_matches_scan() {
        let t = Table::with_columns("t", vec![Column::data("a", vec![5, 3, 9, 3, 7, 1])]).unwrap();
        let ds = Dataset::new("d", vec![t], vec![]).unwrap();
        let idx = DatasetIndexes::build(&ds);
        assert!(idx.has(0, 0));
        let p = Predicate {
            table: 0,
            column: 0,
            lo: 3,
            hi: 7,
        };
        let mut rows = idx.lookup(&p).unwrap();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 1, 3, 4]);
        // Out-of-range predicate returns empty.
        let p2 = Predicate {
            table: 0,
            column: 0,
            lo: 100,
            hi: 200,
        };
        assert!(idx.lookup(&p2).unwrap().is_empty());
    }

    #[test]
    fn key_columns_are_not_indexed() {
        let t = Table::with_columns("t", vec![Column::primary_key("id", vec![1, 2, 3])]).unwrap();
        let ds = Dataset::new("d", vec![t], vec![]).unwrap();
        let idx = DatasetIndexes::build(&ds);
        assert!(!idx.has(0, 0));
    }
}
