//! # ce-optsim — a cost-based query optimizer + executor (the PostgreSQL
//! substitute for Table V)
//!
//! The paper injects estimated cardinalities of **all sub-plan queries**
//! into PostgreSQL's optimizer and measures end-to-end latency. This crate
//! reproduces that mechanism against the in-memory engine:
//!
//! * [`index`]: per-column sorted indexes (the "database load" step);
//! * [`cost`]: a System-R-flavored cost model over estimated cardinalities;
//! * [`optimize`]: dynamic programming over connected join subsets, choosing
//!   join order, join operators (hash vs. nested-loop) and scan methods
//!   (sequential vs. index) from the *estimates* an injected
//!   [`CardEstimator`](ce_models::CardEstimator) provides;
//! * [`execute`]: physically runs the chosen plan (real hash/NL joins, real
//!   scans) so bad estimates genuinely cost wall-clock time;
//! * [`e2e`]: the end-to-end harness — inference latency + execution
//!   latency per workload, plus the `TrueCard` oracle baseline.

pub mod cost;
pub mod e2e;
pub mod execute;
pub mod index;
pub mod optimize;
pub mod plan;

pub use e2e::{run_workload, E2eReport, TrueCardEstimator};
pub use index::DatasetIndexes;
pub use optimize::optimize_query;
pub use plan::{JoinMethod, PlanNode, ScanMethod};
