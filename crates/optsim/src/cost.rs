//! The cost model: System-R-style formulas over *estimated* cardinalities.
//!
//! Constants are tuned so that, with accurate estimates, the optimizer makes
//! the textbook choices (index scans for selective predicates, hash joins
//! for large inputs, nested loops for tiny ones) — and with inaccurate
//! estimates it makes the expensive mistakes Table V measures.

/// Per-tuple cost of a sequential scan.
pub const SEQ_TUPLE_COST: f64 = 1.0;
/// Per-output-tuple cost of an index scan (random access penalty).
pub const INDEX_TUPLE_COST: f64 = 4.0;
/// Fixed index lookup cost (tree descent).
pub const INDEX_LOOKUP_COST: f64 = 32.0;
/// Per-tuple cost of building a hash table.
pub const HASH_BUILD_COST: f64 = 2.0;
/// Per-tuple cost of probing.
pub const HASH_PROBE_COST: f64 = 1.2;
/// Per-pair cost of a nested-loop comparison.
pub const NL_PAIR_COST: f64 = 0.08;
/// Per-output-tuple materialization cost (all operators).
pub const OUTPUT_COST: f64 = 0.5;

/// Cost of a sequential scan of `table_rows` producing `est_out` rows.
pub fn seq_scan_cost(table_rows: f64, est_out: f64) -> f64 {
    table_rows * SEQ_TUPLE_COST + est_out * OUTPUT_COST
}

/// Cost of an index scan expected to touch `est_index_rows` entries and
/// produce `est_out` rows after residual filtering.
pub fn index_scan_cost(est_index_rows: f64, est_out: f64) -> f64 {
    INDEX_LOOKUP_COST + est_index_rows * INDEX_TUPLE_COST + est_out * OUTPUT_COST
}

/// Cost of a hash join (build on `left_rows`).
pub fn hash_join_cost(left_rows: f64, right_rows: f64, est_out: f64) -> f64 {
    left_rows * HASH_BUILD_COST + right_rows * HASH_PROBE_COST + est_out * OUTPUT_COST
}

/// Cost of a nested-loop join.
pub fn nested_loop_cost(left_rows: f64, right_rows: f64, est_out: f64) -> f64 {
    left_rows * right_rows * NL_PAIR_COST + est_out * OUTPUT_COST
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_scan_wins_when_selective() {
        let rows = 10_000.0;
        assert!(index_scan_cost(50.0, 50.0) < seq_scan_cost(rows, 50.0));
        // ... and loses when unselective.
        assert!(index_scan_cost(9_000.0, 9_000.0) > seq_scan_cost(rows, 9_000.0));
    }

    #[test]
    fn hash_join_wins_on_large_inputs() {
        assert!(
            hash_join_cost(5_000.0, 5_000.0, 5_000.0) < nested_loop_cost(5_000.0, 5_000.0, 5_000.0)
        );
        // Nested loop wins when one side is tiny.
        assert!(nested_loop_cost(2.0, 100.0, 5.0) < hash_join_cost(2.0, 100.0, 5.0));
    }
}
