//! Per-column and cross-column statistics.
//!
//! These summaries feed two consumers:
//!
//! * the feature extractor (`ce-features`), which needs exactly the data
//!   features the paper lists in §V-A1 — skewness, kurtosis, standard/mean
//!   deviation, range, domain size, column-to-column correlation and join
//!   correlation;
//! * the histogram-based estimators (`ce-models::postgres`), which need
//!   equi-depth histograms and distinct counts.

use crate::column::{Column, Value};
use crate::dataset::{Dataset, JoinEdge};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Moment-based summary of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of rows.
    pub count: usize,
    /// Minimum value (0 for empty columns).
    pub min: Value,
    /// Maximum value (0 for empty columns).
    pub max: Value,
    /// Number of distinct values.
    pub ndv: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Mean absolute deviation from the mean.
    pub mean_dev: f64,
    /// Sample skewness (third standardized moment); 0 when degenerate.
    pub skewness: f64,
    /// Excess kurtosis (fourth standardized moment − 3); 0 when degenerate.
    pub kurtosis: f64,
}

impl ColumnStats {
    /// Computes all moments in one pass (plus one NDV pass).
    pub fn compute(column: &Column) -> Self {
        let n = column.len();
        if n == 0 {
            return ColumnStats {
                count: 0,
                min: 0,
                max: 0,
                ndv: 0,
                mean: 0.0,
                std_dev: 0.0,
                mean_dev: 0.0,
                skewness: 0.0,
                kurtosis: 0.0,
            };
        }
        let data = &column.data;
        let (mut min, mut max) = (data[0], data[0]);
        let mut sum = 0.0f64;
        for &v in data {
            min = min.min(v);
            max = max.max(v);
            sum += v as f64;
        }
        let mean = sum / n as f64;
        let (mut m2, mut m3, mut m4, mut adev) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for &v in data {
            let d = v as f64 - mean;
            let d2 = d * d;
            m2 += d2;
            m3 += d2 * d;
            m4 += d2 * d2;
            adev += d.abs();
        }
        m2 /= n as f64;
        m3 /= n as f64;
        m4 /= n as f64;
        adev /= n as f64;
        let std_dev = m2.sqrt();
        let (skewness, kurtosis) = if std_dev > 1e-12 {
            (m3 / (std_dev * std_dev * std_dev), m4 / (m2 * m2) - 3.0)
        } else {
            (0.0, 0.0)
        };
        let ndv = data.iter().copied().collect::<HashSet<_>>().len();
        ColumnStats {
            count: n,
            min,
            max,
            ndv,
            mean,
            std_dev,
            mean_dev: adev,
            skewness,
            kurtosis,
        }
    }

    /// Value range (`max - min`), as used in the feature matrix.
    pub fn range(&self) -> f64 {
        (self.max - self.min) as f64
    }
}

/// Equi-depth histogram over a column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiDepthHistogram {
    /// Bucket upper bounds (inclusive), ascending. `bounds.len()` buckets.
    pub bounds: Vec<Value>,
    /// Rows per bucket.
    pub counts: Vec<usize>,
    /// Total rows.
    pub total: usize,
    /// Column minimum (lower bound of the first bucket).
    pub min: Value,
}

impl EquiDepthHistogram {
    /// Builds a histogram with at most `buckets` buckets.
    pub fn build(column: &Column, buckets: usize) -> Self {
        let mut sorted = column.data.clone();
        sorted.sort_unstable();
        let total = sorted.len();
        if total == 0 || buckets == 0 {
            return EquiDepthHistogram {
                bounds: Vec::new(),
                counts: Vec::new(),
                total: 0,
                min: 0,
            };
        }
        let min = sorted[0];
        let per = total.div_ceil(buckets);
        // Run-length encode, then pack runs greedily into buckets of target
        // depth `per`. A run at least as large as `per` (a heavy hitter)
        // always gets its own bucket, so point queries on skewed columns stay
        // accurate — the behavior PostgreSQL gets from its MCV list.
        let mut runs: Vec<(Value, usize)> = Vec::new();
        for &v in &sorted {
            match runs.last_mut() {
                Some((rv, c)) if *rv == v => *c += 1,
                _ => runs.push((v, 1)),
            }
        }
        let mut bounds = Vec::new();
        let mut counts = Vec::new();
        let mut acc = 0usize;
        for (i, &(v, c)) in runs.iter().enumerate() {
            if c >= per && acc > 0 {
                // Close the current bucket before the heavy run.
                bounds.push(runs[i - 1].0);
                counts.push(acc);
                acc = 0;
            }
            acc += c;
            if acc >= per || i + 1 == runs.len() {
                bounds.push(v);
                counts.push(acc);
                acc = 0;
            }
        }
        EquiDepthHistogram {
            bounds,
            counts,
            total,
            min,
        }
    }

    /// Estimated selectivity of `lo <= x <= hi`, assuming uniformity inside
    /// each bucket.
    pub fn selectivity(&self, lo: Value, hi: Value) -> f64 {
        if self.total == 0 || hi < lo {
            return 0.0;
        }
        let mut selected = 0.0f64;
        let mut lower = self.min;
        for (i, &ub) in self.bounds.iter().enumerate() {
            let bucket_lo = lower;
            let bucket_hi = ub;
            lower = ub + 1;
            if bucket_hi < lo || bucket_lo > hi {
                continue;
            }
            let width = (bucket_hi - bucket_lo + 1) as f64;
            let olo = lo.max(bucket_lo);
            let ohi = hi.min(bucket_hi);
            let overlap = (ohi - olo + 1) as f64;
            selected += self.counts[i] as f64 * (overlap / width).clamp(0.0, 1.0);
        }
        (selected / self.total as f64).clamp(0.0, 1.0)
    }
}

/// Pearson correlation between two equal-length columns; 0 when degenerate.
pub fn pearson(a: &Column, b: &Column) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_a = a.data[..n].iter().map(|&v| v as f64).sum::<f64>() / nf;
    let mean_b = b.data[..n].iter().map(|&v| v as f64).sum::<f64>() / nf;
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let da = a.data[i] as f64 - mean_a;
        let db = b.data[i] as f64 - mean_b;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= 1e-12 || vb <= 1e-12 {
        return 0.0;
    }
    (cov / (va.sqrt() * vb.sqrt())).clamp(-1.0, 1.0)
}

/// Fraction of positions where two columns hold the same value — the direct
/// inverse of the generator's F2 correlation parameter (§IV-A).
pub fn equality_rate(a: &Column, b: &Column) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let eq = (0..n).filter(|&i| a.data[i] == b.data[i]).count();
    eq as f64 / n as f64
}

/// Join correlation of an edge: the fraction of the PK column's value set
/// covered by the FK column's value set (§V-A1 — "taking the set of the FK
/// column data, then calculating its ratio over the PK column data").
pub fn join_correlation(ds: &Dataset, edge: &JoinEdge) -> f64 {
    let fk: HashSet<Value> = ds.tables[edge.fk_table].columns[edge.fk_col]
        .data
        .iter()
        .copied()
        .collect();
    let pk: HashSet<Value> = ds.tables[edge.pk_table].columns[edge.pk_col]
        .data
        .iter()
        .copied()
        .collect();
    if pk.is_empty() {
        return 0.0;
    }
    let inter = fk.intersection(&pk).count();
    inter as f64 / pk.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    #[test]
    fn moments_of_uniform() {
        let c = Column::data("u", (1..=100).collect());
        let s = ColumnStats::compute(&c);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.ndv, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!(s.skewness.abs() < 1e-9, "uniform is symmetric");
        assert!(s.kurtosis < 0.0, "uniform is platykurtic");
        assert_eq!(s.range(), 99.0);
    }

    #[test]
    fn skewed_column_has_positive_skew() {
        let mut data = vec![1; 90];
        data.extend(vec![100; 10]);
        let s = ColumnStats::compute(&Column::data("s", data));
        assert!(s.skewness > 1.0);
    }

    #[test]
    fn degenerate_column() {
        let s = ColumnStats::compute(&Column::data("k", vec![7, 7, 7]));
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.ndv, 1);
        let e = ColumnStats::compute(&Column::data("e", vec![]));
        assert_eq!(e.count, 0);
    }

    #[test]
    fn histogram_selectivity() {
        let c = Column::data("h", (1..=1000).collect());
        let h = EquiDepthHistogram::build(&c, 10);
        assert_eq!(h.total, 1000);
        let s = h.selectivity(1, 1000);
        assert!((s - 1.0).abs() < 1e-9);
        let half = h.selectivity(1, 500);
        assert!((half - 0.5).abs() < 0.01, "half = {half}");
        assert_eq!(h.selectivity(2000, 3000), 0.0);
        assert_eq!(h.selectivity(10, 5), 0.0);
    }

    #[test]
    fn histogram_heavy_hitter_not_split() {
        let mut data = vec![5; 500];
        data.extend(1..=500);
        let h = EquiDepthHistogram::build(&Column::data("hh", data), 4);
        let s = h.selectivity(5, 5);
        assert!(s > 0.3, "point query on heavy hitter, s = {s}");
    }

    #[test]
    fn pearson_perfect_and_none() {
        let a = Column::data("a", (1..=50).collect());
        let b = Column::data("b", (1..=50).map(|v| v * 2).collect());
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-9);
        let c = Column::data("c", (1..=50).rev().collect());
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-9);
        let k = Column::data("k", vec![3; 50]);
        assert_eq!(pearson(&a, &k), 0.0);
    }

    #[test]
    fn equality_rate_counts_positions() {
        let a = Column::data("a", vec![1, 2, 3, 4]);
        let b = Column::data("b", vec![1, 9, 3, 9]);
        assert!((equality_rate(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn join_correlation_ratio() {
        let main =
            Table::with_columns("m", vec![Column::primary_key("id", vec![1, 2, 3, 4])]).unwrap();
        let fact =
            Table::with_columns("f", vec![Column::foreign_key("m_id", vec![1, 1, 2, 2])]).unwrap();
        let ds = Dataset::new(
            "d",
            vec![main, fact],
            vec![JoinEdge {
                fk_table: 1,
                fk_col: 0,
                pk_table: 0,
                pk_col: 0,
            }],
        )
        .unwrap();
        // FK covers {1,2} of PK {1,2,3,4} -> 0.5.
        assert!((join_correlation(&ds, &ds.joins[0]) - 0.5).abs() < 1e-12);
    }
}
