//! Error type shared by the storage engine.

use std::fmt;

/// Errors raised by table / dataset construction and query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column was added whose length differs from the table's row count.
    ColumnLengthMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// A table, column or join index referenced an out-of-range entity.
    IndexOutOfRange { what: &'static str, index: usize },
    /// The joined portion of a query is not a connected acyclic subgraph of
    /// the dataset's join graph, so exact counting is not defined.
    NonTreeJoin(String),
    /// A predicate referenced a table that the query does not include.
    PredicateOutsideQuery { table: usize },
    /// A join edge referenced by a query does not exist in the dataset.
    UnknownJoin { fk_table: usize, pk_table: usize },
    /// The query references no tables.
    EmptyQuery,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnLengthMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "column length mismatch in table `{table}`: expected {expected} rows, got {got}"
            ),
            StorageError::IndexOutOfRange { what, index } => {
                write!(f, "{what} index {index} out of range")
            }
            StorageError::NonTreeJoin(msg) => write!(f, "query join graph is not a tree: {msg}"),
            StorageError::PredicateOutsideQuery { table } => {
                write!(
                    f,
                    "predicate references table {table} not joined by the query"
                )
            }
            StorageError::UnknownJoin { fk_table, pk_table } => {
                write!(
                    f,
                    "no PK-FK join edge from table {fk_table} to table {pk_table}"
                )
            }
            StorageError::EmptyQuery => write!(f, "query references no tables"),
        }
    }
}

impl std::error::Error for StorageError {}
