//! The shared SPJ (select-project-join) query representation.
//!
//! A query joins a connected subset of a dataset's tables along PK-FK edges
//! and applies a conjunction of closed range predicates on non-key columns —
//! the query class used throughout the paper's evaluation (§VII-A: "10,000
//! SPJ queries similar to [NeuroCard/Naru]"; CEB templates with `GROUP BY`
//! and `LIKE` removed).

use crate::column::Value;
use crate::dataset::Dataset;
use crate::error::StorageError;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A closed range predicate `lo <= table.column <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicate {
    /// Dataset table index.
    pub table: usize,
    /// Column index within the table.
    pub column: usize,
    /// Inclusive lower bound.
    pub lo: Value,
    /// Inclusive upper bound.
    pub hi: Value,
}

impl Predicate {
    /// True if `v` satisfies the predicate.
    #[inline]
    pub fn matches(&self, v: Value) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// An SPJ query over a dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Indices of the joined tables (connected in the dataset's join graph).
    pub tables: Vec<usize>,
    /// Pairs `(fk_table, pk_table)` of join edges used by the query. Each
    /// pair must exist in [`Dataset::joins`].
    pub joins: Vec<(usize, usize)>,
    /// Conjunctive range predicates on the joined tables' columns.
    pub predicates: Vec<Predicate>,
}

impl Query {
    /// A single-table query with the given predicates.
    pub fn single_table(table: usize, predicates: Vec<Predicate>) -> Self {
        Query {
            tables: vec![table],
            joins: Vec::new(),
            predicates,
        }
    }

    /// Predicates restricted to one table.
    pub fn predicates_on(&self, table: usize) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.table == table)
            .collect()
    }

    /// Number of joins in the query.
    pub fn num_joins(&self) -> usize {
        self.joins.len()
    }

    /// Validates the query against a dataset: tables exist, join edges exist,
    /// the joined subgraph is a connected tree, and predicates reference
    /// joined tables and in-range columns.
    pub fn validate(&self, ds: &Dataset) -> Result<(), StorageError> {
        if self.tables.is_empty() {
            return Err(StorageError::EmptyQuery);
        }
        let tset: HashSet<usize> = self.tables.iter().copied().collect();
        for &t in &self.tables {
            ds.table(t)?;
        }
        for &(a, b) in &self.joins {
            if !tset.contains(&a) || !tset.contains(&b) {
                return Err(StorageError::NonTreeJoin(format!(
                    "join ({a},{b}) touches a table outside the query"
                )));
            }
            let edge = ds.join_between(a, b).ok_or(StorageError::UnknownJoin {
                fk_table: a,
                pk_table: b,
            })?;
            // Direction must match the dataset edge.
            if !(edge.fk_table == a && edge.pk_table == b) {
                return Err(StorageError::UnknownJoin {
                    fk_table: a,
                    pk_table: b,
                });
            }
        }
        // Tree check: |edges| == |tables| - 1 and connected.
        if self.joins.len() + 1 != self.tables.len() {
            return Err(StorageError::NonTreeJoin(format!(
                "{} tables but {} joins",
                self.tables.len(),
                self.joins.len()
            )));
        }
        if !self.is_connected() {
            return Err(StorageError::NonTreeJoin("join graph disconnected".into()));
        }
        for p in &self.predicates {
            if !tset.contains(&p.table) {
                return Err(StorageError::PredicateOutsideQuery { table: p.table });
            }
            ds.table(p.table)?.column(p.column)?;
        }
        Ok(())
    }

    fn is_connected(&self) -> bool {
        if self.tables.len() <= 1 {
            return true;
        }
        let mut reached = HashSet::new();
        let mut stack = vec![self.tables[0]];
        reached.insert(self.tables[0]);
        while let Some(t) = stack.pop() {
            for &(a, b) in &self.joins {
                let other = if a == t {
                    b
                } else if b == t {
                    a
                } else {
                    continue;
                };
                if reached.insert(other) {
                    stack.push(other);
                }
            }
        }
        reached.len() == self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::dataset::JoinEdge;
    use crate::table::Table;

    fn ds() -> Dataset {
        let a = Table::with_columns(
            "a",
            vec![
                Column::primary_key("id", vec![1, 2]),
                Column::data("x", vec![5, 6]),
            ],
        )
        .unwrap();
        let b = Table::with_columns(
            "b",
            vec![
                Column::foreign_key("a_id", vec![1, 2, 2]),
                Column::data("y", vec![1, 2, 3]),
            ],
        )
        .unwrap();
        Dataset::new(
            "ds",
            vec![a, b],
            vec![JoinEdge {
                fk_table: 1,
                fk_col: 0,
                pk_table: 0,
                pk_col: 0,
            }],
        )
        .unwrap()
    }

    #[test]
    fn predicate_matches() {
        let p = Predicate {
            table: 0,
            column: 1,
            lo: 3,
            hi: 7,
        };
        assert!(p.matches(3) && p.matches(7) && p.matches(5));
        assert!(!p.matches(2) && !p.matches(8));
    }

    #[test]
    fn valid_join_query() {
        let q = Query {
            tables: vec![0, 1],
            joins: vec![(1, 0)],
            predicates: vec![Predicate {
                table: 1,
                column: 1,
                lo: 1,
                hi: 2,
            }],
        };
        q.validate(&ds()).unwrap();
    }

    #[test]
    fn wrong_direction_rejected() {
        let q = Query {
            tables: vec![0, 1],
            joins: vec![(0, 1)], // reversed
            predicates: vec![],
        };
        assert!(q.validate(&ds()).is_err());
    }

    #[test]
    fn disconnected_rejected() {
        let q = Query {
            tables: vec![0, 1],
            joins: vec![],
            predicates: vec![],
        };
        assert!(matches!(
            q.validate(&ds()),
            Err(StorageError::NonTreeJoin(_))
        ));
    }

    #[test]
    fn predicate_outside_query_rejected() {
        let q = Query::single_table(
            0,
            vec![Predicate {
                table: 1,
                column: 1,
                lo: 0,
                hi: 9,
            }],
        );
        assert!(matches!(
            q.validate(&ds()),
            Err(StorageError::PredicateOutsideQuery { table: 1 })
        ));
    }
}
