//! # ce-storage — in-memory columnar relational engine
//!
//! The substrate every other crate of the AutoCE reproduction builds on:
//!
//! * [`Table`] / [`Column`] / [`Dataset`]: dictionary-encoded (`i64`) columnar
//!   tables connected by PK-FK [`JoinEdge`]s, mirroring the schema model of the
//!   paper (§IV-A: every generated column has values in `1..=domain_size`).
//! * [`query`]: the shared SPJ query representation (joined table subset +
//!   conjunctive range predicates) used by the workload generator, every CE
//!   model, the testbed and the plan simulator.
//! * [`exec`]: exact query evaluation — per-table predicate filtering, acyclic
//!   (Yannakakis-style) join counting for ground-truth cardinalities, and a
//!   weighted full-join sampler (the NeuroCard-style join sample source).
//! * [`stats`]: per-column summaries (min/max/NDV/histograms) consumed by the
//!   feature extractor and the histogram-based estimators.

pub mod column;
pub mod dataset;
pub mod error;
pub mod exec;
pub mod query;
pub mod stats;
pub mod table;

pub use column::{Column, ColumnRole, Value};
pub use dataset::{Dataset, JoinEdge};
pub use error::StorageError;
pub use query::{Predicate, Query};
pub use table::Table;
