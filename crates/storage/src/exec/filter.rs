//! Predicate filtering over single tables.

use crate::query::Predicate;
use crate::table::Table;

/// Returns the row indices of `table` satisfying **all** predicates.
///
/// Predicates must already be restricted to this table (see
/// [`Query::predicates_on`](crate::query::Query::predicates_on)).
pub fn filter_table(table: &Table, predicates: &[&Predicate]) -> Vec<u32> {
    let n = table.num_rows();
    let mut out = Vec::new();
    'rows: for row in 0..n {
        for p in predicates {
            if !p.matches(table.columns[p.column].data[row]) {
                continue 'rows;
            }
        }
        out.push(row as u32);
    }
    out
}

/// Returns a boolean selection bitmap (one entry per row) for `table`.
///
/// Faster than [`filter_table`] when downstream code probes membership by
/// row id (the Yannakakis counter does).
pub fn selection_bitmap(table: &Table, predicates: &[&Predicate]) -> Vec<bool> {
    let n = table.num_rows();
    let mut sel = vec![true; n];
    for p in predicates {
        let col = &table.columns[p.column].data;
        for (row, keep) in sel.iter_mut().enumerate() {
            if *keep && !p.matches(col[row]) {
                *keep = false;
            }
        }
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table() -> Table {
        Table::with_columns(
            "t",
            vec![
                Column::data("a", vec![1, 2, 3, 4, 5]),
                Column::data("b", vec![5, 4, 3, 2, 1]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn conjunction() {
        let t = table();
        let p1 = Predicate {
            table: 0,
            column: 0,
            lo: 2,
            hi: 4,
        };
        let p2 = Predicate {
            table: 0,
            column: 1,
            lo: 3,
            hi: 5,
        };
        let rows = filter_table(&t, &[&p1, &p2]);
        assert_eq!(rows, vec![1, 2]); // rows with a in 2..=4 and b in 3..=5
        let bm = selection_bitmap(&t, &[&p1, &p2]);
        assert_eq!(bm, vec![false, true, true, false, false]);
    }

    #[test]
    fn no_predicates_selects_everything() {
        let t = table();
        assert_eq!(filter_table(&t, &[]).len(), 5);
        assert!(selection_bitmap(&t, &[]).iter().all(|&b| b));
    }
}
