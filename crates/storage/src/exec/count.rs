//! Exact cardinality of acyclic SPJ queries.
//!
//! Uses the classic Yannakakis bottom-up weighted count: each table starts
//! with per-row weights of 1 (filtered rows) or 0, and every join edge folds
//! the child table's weights into the parent through the join key. The total
//! weight at the root equals the exact join-result cardinality, in time
//! linear in the table sizes — this is what lets the testbed label thousands
//! of datasets with ground truth quickly (paper Stage 1, steps 4-6).

use crate::dataset::Dataset;
use crate::error::StorageError;
use crate::exec::filter::selection_bitmap;
use crate::query::Query;
use std::collections::HashMap;

/// Computes the exact result cardinality of `query` against `ds`.
///
/// The query must validate (connected acyclic join subgraph). Intermediate
/// weights use `u128` so deep star joins cannot overflow; the final count
/// saturates at `u64::MAX`.
pub fn query_cardinality(ds: &Dataset, query: &Query) -> Result<u64, StorageError> {
    query.validate(ds)?;

    // Per-query-table selection weights.
    let mut weights: HashMap<usize, Vec<u128>> = HashMap::new();
    for &t in &query.tables {
        let table = ds.table(t)?;
        let preds = query.predicates_on(t);
        let sel = selection_bitmap(table, &preds);
        weights.insert(t, sel.into_iter().map(|b| b as u128).collect());
    }

    if query.tables.len() == 1 {
        let total: u128 = weights[&query.tables[0]].iter().sum();
        return Ok(clamp_u64(total));
    }

    // Adjacency over query join edges.
    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    for &(a, b) in &query.joins {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default().push(a);
    }

    // Iterative post-order DFS from the first query table.
    let root = query.tables[0];
    let mut order = Vec::with_capacity(query.tables.len());
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut stack = vec![root];
    let mut visited: HashMap<usize, bool> = HashMap::new();
    while let Some(t) = stack.pop() {
        if visited.insert(t, true).is_some() {
            continue;
        }
        order.push(t);
        for &n in adj.get(&t).into_iter().flatten() {
            if !visited.contains_key(&n) {
                parent.insert(n, t);
                stack.push(n);
            }
        }
    }

    // Fold children into parents in reverse visit order.
    for &child in order.iter().rev() {
        let Some(&par) = parent.get(&child) else {
            continue; // root
        };
        let edge = ds
            .join_between(child, par)
            .expect("validated query edge must exist");
        let child_w = weights.remove(&child).expect("child weights present");
        let par_w = weights.get_mut(&par).expect("parent weights present");
        if edge.fk_table == child {
            // Child rows reference parent PKs: sum child weight per key.
            let fk = &ds.tables[child].columns[edge.fk_col].data;
            let mut by_key: HashMap<i64, u128> = HashMap::new();
            for (row, &w) in child_w.iter().enumerate() {
                if w > 0 {
                    *by_key.entry(fk[row]).or_insert(0) += w;
                }
            }
            let pk = &ds.tables[par].columns[edge.pk_col].data;
            for (row, w) in par_w.iter_mut().enumerate() {
                if *w > 0 {
                    *w = w.saturating_mul(*by_key.get(&pk[row]).unwrap_or(&0));
                }
            }
        } else {
            // Parent rows reference child PKs: child PK is unique.
            let pk = &ds.tables[child].columns[edge.pk_col].data;
            let mut by_key: HashMap<i64, u128> = HashMap::with_capacity(child_w.len());
            for (row, &w) in child_w.iter().enumerate() {
                if w > 0 {
                    by_key.insert(pk[row], w);
                }
            }
            let fk = &ds.tables[par].columns[edge.fk_col].data;
            for (row, w) in par_w.iter_mut().enumerate() {
                if *w > 0 {
                    *w = w.saturating_mul(*by_key.get(&fk[row]).unwrap_or(&0));
                }
            }
        }
    }

    let total: u128 = weights[&root].iter().sum();
    Ok(clamp_u64(total))
}

#[inline]
fn clamp_u64(v: u128) -> u64 {
    v.min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::dataset::JoinEdge;
    use crate::query::Predicate;
    use crate::table::Table;

    /// main(id, x) ; fact(main_id, y): fan-outs 2,1,0 for ids 1,2,3.
    fn star() -> Dataset {
        let main = Table::with_columns(
            "main",
            vec![
                Column::primary_key("id", vec![1, 2, 3]),
                Column::data("x", vec![10, 20, 30]),
            ],
        )
        .unwrap();
        let fact = Table::with_columns(
            "fact",
            vec![
                Column::foreign_key("main_id", vec![1, 1, 2]),
                Column::data("y", vec![100, 200, 300]),
            ],
        )
        .unwrap();
        Dataset::new(
            "star",
            vec![main, fact],
            vec![JoinEdge {
                fk_table: 1,
                fk_col: 0,
                pk_table: 0,
                pk_col: 0,
            }],
        )
        .unwrap()
    }

    #[test]
    fn single_table_count() {
        let ds = star();
        let q = Query::single_table(
            0,
            vec![Predicate {
                table: 0,
                column: 1,
                lo: 15,
                hi: 35,
            }],
        );
        assert_eq!(query_cardinality(&ds, &q).unwrap(), 2);
    }

    #[test]
    fn join_count_no_predicates() {
        let ds = star();
        let q = Query {
            tables: vec![0, 1],
            joins: vec![(1, 0)],
            predicates: vec![],
        };
        // Full join: 3 fact rows each match exactly one main row.
        assert_eq!(query_cardinality(&ds, &q).unwrap(), 3);
    }

    #[test]
    fn join_count_with_predicates_both_sides() {
        let ds = star();
        let q = Query {
            tables: vec![0, 1],
            joins: vec![(1, 0)],
            predicates: vec![
                Predicate {
                    table: 0,
                    column: 1,
                    lo: 10,
                    hi: 10,
                }, // main id=1 only
                Predicate {
                    table: 1,
                    column: 1,
                    lo: 150,
                    hi: 400,
                }, // fact rows 1,2
            ],
        };
        // main id=1 joins fact rows {0,1}; of those only row 1 passes y-pred.
        assert_eq!(query_cardinality(&ds, &q).unwrap(), 1);
    }

    /// Chain a -> b -> c with multiplicities, exercising both edge
    /// directions relative to the DFS root.
    #[test]
    fn chain_count_matches_bruteforce() {
        let a = Table::with_columns(
            "a",
            vec![
                Column::primary_key("id", vec![1, 2]),
                Column::data("v", vec![1, 2]),
            ],
        )
        .unwrap();
        let b = Table::with_columns(
            "b",
            vec![
                Column::primary_key("id", vec![10, 20, 30]),
                Column::foreign_key("a_id", vec![1, 1, 2]),
            ],
        )
        .unwrap();
        let c = Table::with_columns(
            "c",
            vec![
                Column::foreign_key("b_id", vec![10, 10, 20, 30, 30]),
                Column::data("w", vec![1, 2, 3, 4, 5]),
            ],
        )
        .unwrap();
        let ds = Dataset::new(
            "chain",
            vec![a, b, c],
            vec![
                JoinEdge {
                    fk_table: 1,
                    fk_col: 1,
                    pk_table: 0,
                    pk_col: 0,
                },
                JoinEdge {
                    fk_table: 2,
                    fk_col: 0,
                    pk_table: 1,
                    pk_col: 0,
                },
            ],
        )
        .unwrap();

        // Brute force: every (a,b,c) row triple with matching keys.
        let mut expected = 0u64;
        for ra in 0..2 {
            for rb in 0..3 {
                if ds.tables[1].columns[1].data[rb] != ds.tables[0].columns[0].data[ra] {
                    continue;
                }
                for rc in 0..5 {
                    if ds.tables[2].columns[0].data[rc] == ds.tables[1].columns[0].data[rb] {
                        expected += 1;
                    }
                }
            }
        }
        let q = Query {
            tables: vec![0, 1, 2],
            joins: vec![(1, 0), (2, 1)],
            predicates: vec![],
        };
        assert_eq!(query_cardinality(&ds, &q).unwrap(), expected);
        // Root the DFS differently by listing tables in another order.
        let q2 = Query {
            tables: vec![2, 1, 0],
            joins: vec![(1, 0), (2, 1)],
            predicates: vec![],
        };
        assert_eq!(query_cardinality(&ds, &q2).unwrap(), expected);
    }

    #[test]
    fn empty_result() {
        let ds = star();
        let q = Query {
            tables: vec![0, 1],
            joins: vec![(1, 0)],
            predicates: vec![Predicate {
                table: 1,
                column: 1,
                lo: 999,
                hi: 1000,
            }],
        };
        assert_eq!(query_cardinality(&ds, &q).unwrap(), 0);
    }
}
