//! Materializing binary join operators.
//!
//! These are the physical operators the plan simulator (`ce-optsim`) chooses
//! between when replaying a query plan with injected cardinality estimates:
//! a build/probe hash join and a nested-loop join. Both operate on *row-id
//! selections* so they compose with predicate filtering and with each other.

use crate::column::Value;
use crate::table::Table;
use std::collections::HashMap;

/// An intermediate relation: for each surviving output row, the originating
/// row id in every base table joined so far.
#[derive(Debug, Clone)]
pub struct JoinedRows {
    /// The base tables (dataset table indices) covered, in column order of
    /// `rows` entries.
    pub tables: Vec<usize>,
    /// One entry per output row; entry `i` holds the row ids aligned with
    /// `tables`.
    pub rows: Vec<Vec<u32>>,
}

impl JoinedRows {
    /// Lifts a filtered base-table selection into a unary intermediate.
    pub fn from_selection(table: usize, row_ids: Vec<u32>) -> Self {
        JoinedRows {
            tables: vec![table],
            rows: row_ids.into_iter().map(|r| vec![r]).collect(),
        }
    }

    /// Output cardinality.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the intermediate is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Position of `table` inside `tables`, if joined already.
    pub fn position(&self, table: usize) -> Option<usize> {
        self.tables.iter().position(|&t| t == table)
    }
}

/// Key extraction: the join key of output row `row` of `side`, taken from
/// base table `table_pos` column `col` of table `table`.
fn key_of(side: &JoinedRows, table_pos: usize, table: &Table, col: usize, row: usize) -> Value {
    let base_row = side.rows[row][table_pos] as usize;
    table.columns[col].data[base_row]
}

/// Build/probe hash join of `left` and `right` on
/// `left.key_table.key_col == right.key_table.key_col`.
///
/// `left_key = (position-in-left, &Table, column)` etc. The smaller side
/// should be passed as `left` (the build side) by the caller's cost model.
pub fn hash_join(
    left: &JoinedRows,
    left_key: (usize, &Table, usize),
    right: &JoinedRows,
    right_key: (usize, &Table, usize),
) -> JoinedRows {
    let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
    for row in 0..left.len() {
        let k = key_of(left, left_key.0, left_key.1, left_key.2, row);
        index.entry(k).or_default().push(row);
    }
    let mut out_tables = left.tables.clone();
    out_tables.extend_from_slice(&right.tables);
    let mut out_rows = Vec::new();
    for rrow in 0..right.len() {
        let k = key_of(right, right_key.0, right_key.1, right_key.2, rrow);
        if let Some(matches) = index.get(&k) {
            for &lrow in matches {
                let mut combined = left.rows[lrow].clone();
                combined.extend_from_slice(&right.rows[rrow]);
                out_rows.push(combined);
            }
        }
    }
    JoinedRows {
        tables: out_tables,
        rows: out_rows,
    }
}

/// Nested-loop join with the same semantics as [`hash_join`]. Quadratic —
/// exactly why a bad cardinality estimate that picks it on a large input
/// hurts end-to-end latency (the effect Table V measures).
pub fn nested_loop_join(
    left: &JoinedRows,
    left_key: (usize, &Table, usize),
    right: &JoinedRows,
    right_key: (usize, &Table, usize),
) -> JoinedRows {
    let mut out_tables = left.tables.clone();
    out_tables.extend_from_slice(&right.tables);
    let mut out_rows = Vec::new();
    for lrow in 0..left.len() {
        let lk = key_of(left, left_key.0, left_key.1, left_key.2, lrow);
        for rrow in 0..right.len() {
            let rk = key_of(right, right_key.0, right_key.1, right_key.2, rrow);
            if lk == rk {
                let mut combined = left.rows[lrow].clone();
                combined.extend_from_slice(&right.rows[rrow]);
                out_rows.push(combined);
            }
        }
    }
    JoinedRows {
        tables: out_tables,
        rows: out_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn tables() -> (Table, Table) {
        let a = Table::with_columns(
            "a",
            vec![
                Column::primary_key("id", vec![1, 2, 3]),
                Column::data("x", vec![10, 20, 30]),
            ],
        )
        .unwrap();
        let b = Table::with_columns(
            "b",
            vec![
                Column::foreign_key("a_id", vec![1, 1, 2, 9]),
                Column::data("y", vec![5, 6, 7, 8]),
            ],
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn hash_and_nested_loop_agree() {
        let (a, b) = tables();
        let left = JoinedRows::from_selection(0, vec![0, 1, 2]);
        let right = JoinedRows::from_selection(1, vec![0, 1, 2, 3]);
        let h = hash_join(&left, (0, &a, 0), &right, (0, &b, 0));
        let n = nested_loop_join(&left, (0, &a, 0), &right, (0, &b, 0));
        assert_eq!(h.len(), 3); // fk 9 dangles
        assert_eq!(n.len(), 3);
        let mut hs: Vec<_> = h.rows.clone();
        let mut ns: Vec<_> = n.rows.clone();
        hs.sort();
        ns.sort();
        assert_eq!(hs, ns);
        assert_eq!(h.tables, vec![0, 1]);
    }

    #[test]
    fn join_respects_selections() {
        let (a, b) = tables();
        // Only a.id = 2 survives filtering.
        let left = JoinedRows::from_selection(0, vec![1]);
        let right = JoinedRows::from_selection(1, vec![0, 1, 2, 3]);
        let h = hash_join(&left, (0, &a, 0), &right, (0, &b, 0));
        assert_eq!(h.len(), 1);
        assert_eq!(h.rows[0], vec![1, 2]); // a row 1 joined with b row 2
    }

    #[test]
    fn empty_inputs() {
        let (a, b) = tables();
        let left = JoinedRows::from_selection(0, vec![]);
        let right = JoinedRows::from_selection(1, vec![0]);
        assert!(hash_join(&left, (0, &a, 0), &right, (0, &b, 0)).is_empty());
        assert!(nested_loop_join(&left, (0, &a, 0), &right, (0, &b, 0)).is_empty());
    }
}
