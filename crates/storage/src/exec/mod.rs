//! Exact query evaluation.
//!
//! * [`filter`]: per-table predicate evaluation producing row-id selections.
//! * [`count`]: exact cardinality of acyclic SPJ queries via a
//!   Yannakakis-style bottom-up weighted count (linear in table sizes).
//! * [`sample`]: weighted uniform sampling from the (never materialized)
//!   full join result — the join-sample source of NeuroCard/UAE.
//! * [`join`]: materializing binary hash / nested-loop joins used by the
//!   plan simulator (`ce-optsim`) to measure real execution times.

pub mod count;
pub mod filter;
pub mod join;
pub mod sample;

pub use count::query_cardinality;
pub use filter::{filter_table, selection_bitmap};
pub use join::{hash_join, nested_loop_join, JoinedRows};
pub use sample::sample_join;
