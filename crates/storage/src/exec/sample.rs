//! Uniform sampling from the full join result without materializing it.
//!
//! NeuroCard (and UAE) train an autoregressive model over *samples of the
//! full outer join of the base tables*. This module provides the equivalent
//! sampler for our PK-FK inner-join trees: it computes per-row subtree
//! weights (how many full-join rows each base row participates in) and then
//! draws exact uniform samples top-down, picking each child row with
//! probability proportional to its subtree weight.

use crate::column::Value;
use crate::dataset::Dataset;
use crate::error::StorageError;
use crate::query::Query;
use rand::Rng;
use std::collections::HashMap;

/// A sample of the join result.
#[derive(Debug, Clone)]
pub struct JoinSample {
    /// Schema of each output column as `(table index, column index)`.
    pub schema: Vec<(usize, usize)>,
    /// Sampled rows; each row is aligned with `schema`.
    pub rows: Vec<Vec<Value>>,
}

/// Draws `n` uniform samples from the join of `query.tables` along
/// `query.joins` (predicates on the query are ignored: the sampler always
/// samples the *full* join, as NeuroCard does at training time).
pub fn sample_join<R: Rng>(
    ds: &Dataset,
    query: &Query,
    n: usize,
    rng: &mut R,
) -> Result<JoinSample, StorageError> {
    let stripped = Query {
        tables: query.tables.clone(),
        joins: query.joins.clone(),
        predicates: Vec::new(),
    };
    stripped.validate(ds)?;

    let schema: Vec<(usize, usize)> = stripped
        .tables
        .iter()
        .flat_map(|&t| (0..ds.tables[t].num_columns()).map(move |c| (t, c)))
        .collect();

    // Tree structure rooted at the first query table.
    let root = stripped.tables[0];
    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    for &(a, b) in &stripped.joins {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default().push(a);
    }
    let mut order = Vec::new();
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut stack = vec![root];
    let mut seen: HashMap<usize, bool> = HashMap::new();
    while let Some(t) = stack.pop() {
        if seen.insert(t, true).is_some() {
            continue;
        }
        order.push(t);
        for &nb in adj.get(&t).into_iter().flatten() {
            if !seen.contains_key(&nb) {
                parent.insert(nb, t);
                stack.push(nb);
            }
        }
    }
    let children: HashMap<usize, Vec<usize>> = {
        let mut m: HashMap<usize, Vec<usize>> = HashMap::new();
        for (&c, &p) in &parent {
            m.entry(p).or_default().push(c);
        }
        m
    };

    // Bottom-up subtree weights.
    let mut weights: HashMap<usize, Vec<u128>> = stripped
        .tables
        .iter()
        .map(|&t| (t, vec![1u128; ds.tables[t].num_rows()]))
        .collect();
    // For sampling we also need, per edge, an index from parent key to the
    // candidate child rows with cumulative weights.
    type KeyIndex = HashMap<Value, (Vec<u32>, Vec<u128>)>; // rows, cumulative weights
    let mut edge_index: HashMap<(usize, usize), KeyIndex> = HashMap::new();

    for &child in order.iter().rev() {
        let Some(&par) = parent.get(&child) else {
            continue;
        };
        let edge = ds
            .join_between(child, par)
            .expect("validated query edge must exist");
        let child_w = weights[&child].clone();
        // Key of each child row that the parent must match, and the parent's
        // own key column.
        let (child_key_col, parent_key_col) = if edge.fk_table == child {
            (edge.fk_col, edge.pk_col)
        } else {
            (edge.pk_col, edge.fk_col)
        };
        let ckeys = &ds.tables[child].columns[child_key_col].data;
        let mut index: KeyIndex = HashMap::new();
        for (row, &w) in child_w.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let entry = index.entry(ckeys[row]).or_default();
            let prev = entry.1.last().copied().unwrap_or(0);
            entry.0.push(row as u32);
            entry.1.push(prev + w);
        }
        let pkeys = &ds.tables[par].columns[parent_key_col].data;
        let par_w = weights.get_mut(&par).expect("parent weights");
        for (row, w) in par_w.iter_mut().enumerate() {
            let total = index
                .get(&pkeys[row])
                .and_then(|(_, cum)| cum.last().copied())
                .unwrap_or(0);
            *w = w.saturating_mul(total);
        }
        edge_index.insert((par, child), index);
    }

    // Root cumulative distribution.
    let root_w = &weights[&root];
    let mut root_cum: Vec<u128> = Vec::with_capacity(root_w.len());
    let mut acc = 0u128;
    for &w in root_w {
        acc += w;
        root_cum.push(acc);
    }
    if acc == 0 {
        return Ok(JoinSample {
            schema,
            rows: Vec::new(),
        });
    }

    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut chosen: HashMap<usize, u32> = HashMap::new();
        let target = rng.gen_range(0..acc);
        let root_row = partition_point(&root_cum, target);
        chosen.insert(root, root_row as u32);
        // Walk the tree in visit order; parents are always chosen first.
        for &t in &order {
            let Some(kids) = children.get(&t) else {
                continue;
            };
            let prow = chosen[&t] as usize;
            for &c in kids {
                let edge = ds.join_between(c, t).expect("edge exists");
                let parent_key_col = if edge.fk_table == c {
                    edge.pk_col
                } else {
                    edge.fk_col
                };
                let key = ds.tables[t].columns[parent_key_col].data[prow];
                let (rows_for_key, cum) = &edge_index[&(t, c)][&key];
                let total = *cum.last().expect("nonempty by construction");
                let tgt = rng.gen_range(0..total);
                let pos = partition_point(cum, tgt);
                chosen.insert(c, rows_for_key[pos]);
            }
        }
        let row: Vec<Value> = schema
            .iter()
            .map(|&(t, c)| ds.tables[t].columns[c].data[chosen[&t] as usize])
            .collect();
        rows.push(row);
    }
    Ok(JoinSample { schema, rows })
}

/// First index whose cumulative weight exceeds `target`.
fn partition_point(cum: &[u128], target: u128) -> usize {
    let mut lo = 0usize;
    let mut hi = cum.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cum[mid] <= target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::dataset::JoinEdge;
    use crate::exec::count::query_cardinality;
    use crate::table::Table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ds() -> Dataset {
        let main = Table::with_columns(
            "main",
            vec![
                Column::primary_key("id", vec![1, 2, 3]),
                Column::data("x", vec![10, 20, 30]),
            ],
        )
        .unwrap();
        let fact = Table::with_columns(
            "fact",
            vec![
                Column::foreign_key("main_id", vec![1, 1, 1, 2]),
                Column::data("y", vec![100, 200, 300, 400]),
            ],
        )
        .unwrap();
        Dataset::new(
            "ds",
            vec![main, fact],
            vec![JoinEdge {
                fk_table: 1,
                fk_col: 0,
                pk_table: 0,
                pk_col: 0,
            }],
        )
        .unwrap()
    }

    #[test]
    fn sample_distribution_matches_join() {
        let ds = ds();
        let q = Query {
            tables: vec![0, 1],
            joins: vec![(1, 0)],
            predicates: vec![],
        };
        let card = query_cardinality(&ds, &q).unwrap(); // 4 join rows
        assert_eq!(card, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let s = sample_join(&ds, &q, 4000, &mut rng).unwrap();
        assert_eq!(s.rows.len(), 4000);
        assert_eq!(s.schema.len(), 4); // 2 cols per table
                                       // P(main id = 1) should be 3/4 (three fact rows reference id 1).
        let id_col = 0; // (table 0, col 0)
        let ones = s.rows.iter().filter(|r| r[id_col] == 1).count();
        let frac = ones as f64 / 4000.0;
        assert!((frac - 0.75).abs() < 0.05, "frac = {frac}");
        // main id = 3 never appears in the inner join.
        assert!(s.rows.iter().all(|r| r[id_col] != 3));
    }

    #[test]
    fn empty_join_yields_no_rows() {
        let main = Table::with_columns("m", vec![Column::primary_key("id", vec![1])]).unwrap();
        let fact = Table::with_columns("f", vec![Column::foreign_key("m_id", vec![2, 2])]).unwrap();
        let ds = Dataset::new(
            "e",
            vec![main, fact],
            vec![JoinEdge {
                fk_table: 1,
                fk_col: 0,
                pk_table: 0,
                pk_col: 0,
            }],
        )
        .unwrap();
        let q = Query {
            tables: vec![0, 1],
            joins: vec![(1, 0)],
            predicates: vec![],
        };
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_join(&ds, &q, 10, &mut rng).unwrap();
        assert!(s.rows.is_empty());
    }
}
