//! Dictionary-encoded columns.
//!
//! Every value in the system is an `i64` in `1..=domain_size`, matching the
//! paper's data generator (§IV-A). Real-world data is dictionary-encoded into
//! the same representation before ingestion, so the whole pipeline (feature
//! extraction, estimators, execution) operates on one value type.

use serde::{Deserialize, Serialize};

/// The single value type of the engine.
pub type Value = i64;

/// What role a column plays in the schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnRole {
    /// Plain data column — predicates may reference it.
    Data,
    /// Primary key of its table (unique values).
    PrimaryKey,
    /// Foreign key referencing another table's primary key.
    ForeignKey,
}

/// A named, dictionary-encoded column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// Row values.
    pub data: Vec<Value>,
    /// Schema role of the column.
    pub role: ColumnRole,
}

impl Column {
    /// Creates a plain data column.
    pub fn data(name: impl Into<String>, data: Vec<Value>) -> Self {
        Column {
            name: name.into(),
            data,
            role: ColumnRole::Data,
        }
    }

    /// Creates a primary-key column. Uniqueness is the caller's contract and
    /// is checked by [`Table::validate`](crate::table::Table::validate).
    pub fn primary_key(name: impl Into<String>, data: Vec<Value>) -> Self {
        Column {
            name: name.into(),
            data,
            role: ColumnRole::PrimaryKey,
        }
    }

    /// Creates a foreign-key column.
    pub fn foreign_key(name: impl Into<String>, data: Vec<Value>) -> Self {
        Column {
            name: name.into(),
            data,
            role: ColumnRole::ForeignKey,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True for key columns (primary or foreign). Predicates in generated
    /// workloads only reference non-key columns, as in the paper's split
    /// procedure ("1-2 *non-key* columns for each chosen table").
    pub fn is_key(&self) -> bool {
        self.role != ColumnRole::Data
    }

    /// Minimum value, or `None` for an empty column.
    pub fn min(&self) -> Option<Value> {
        self.data.iter().copied().min()
    }

    /// Maximum value, or `None` for an empty column.
    pub fn max(&self) -> Option<Value> {
        self.data.iter().copied().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_and_key_flag() {
        assert!(!Column::data("a", vec![1]).is_key());
        assert!(Column::primary_key("pk", vec![1]).is_key());
        assert!(Column::foreign_key("fk", vec![1]).is_key());
    }

    #[test]
    fn min_max() {
        let c = Column::data("a", vec![5, 1, 9, 3]);
        assert_eq!(c.min(), Some(1));
        assert_eq!(c.max(), Some(9));
        assert_eq!(c.len(), 4);
        let empty = Column::data("e", vec![]);
        assert_eq!(empty.min(), None);
        assert!(empty.is_empty());
    }
}
