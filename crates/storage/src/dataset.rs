//! Datasets: tables plus a PK-FK join graph.

use crate::error::StorageError;
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// A PK-FK join edge: column `fk_col` of table `fk_table` references the
/// primary-key column `pk_col` of table `pk_table`.
///
/// In the paper's feature-graph edge matrix `E`, this edge occupies
/// `E[pk_table][fk_table]` and stores the *join correlation* (the fraction of
/// the PK domain covered by the FK column — §V-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// Index of the referencing (fact-side) table.
    pub fk_table: usize,
    /// Column index of the foreign key inside `fk_table`.
    pub fk_col: usize,
    /// Index of the referenced (dimension / "main") table.
    pub pk_table: usize,
    /// Column index of the primary key inside `pk_table`.
    pub pk_col: usize,
}

/// A dataset: a set of tables connected by PK-FK joins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// Tables; indices are stable identifiers used by joins and queries.
    pub tables: Vec<Table>,
    /// PK-FK join edges. The generator guarantees the undirected join graph
    /// is acyclic (a forest), which exact counting relies on.
    pub joins: Vec<JoinEdge>,
}

impl Dataset {
    /// Creates a dataset, validating each table and every join edge.
    pub fn new(
        name: impl Into<String>,
        tables: Vec<Table>,
        joins: Vec<JoinEdge>,
    ) -> Result<Self, StorageError> {
        let ds = Dataset {
            name: name.into(),
            tables,
            joins,
        };
        ds.validate()?;
        Ok(ds)
    }

    /// Table access by index.
    pub fn table(&self, idx: usize) -> Result<&Table, StorageError> {
        self.tables.get(idx).ok_or(StorageError::IndexOutOfRange {
            what: "table",
            index: idx,
        })
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::num_rows).sum()
    }

    /// Looks up the join edge between two tables (either direction).
    pub fn join_between(&self, a: usize, b: usize) -> Option<&JoinEdge> {
        self.joins
            .iter()
            .find(|j| (j.fk_table == a && j.pk_table == b) || (j.fk_table == b && j.pk_table == a))
    }

    /// Join edges incident to `table` (as either side).
    pub fn joins_of(&self, table: usize) -> Vec<&JoinEdge> {
        self.joins
            .iter()
            .filter(|j| j.fk_table == table || j.pk_table == table)
            .collect()
    }

    /// Validates tables, join-edge indices, and acyclicity of the undirected
    /// join graph.
    pub fn validate(&self) -> Result<(), StorageError> {
        for t in &self.tables {
            t.validate()?;
        }
        for j in &self.joins {
            let fk_t = self.table(j.fk_table)?;
            let pk_t = self.table(j.pk_table)?;
            fk_t.column(j.fk_col)?;
            pk_t.column(j.pk_col)?;
        }
        // Union-find cycle check on the undirected join graph.
        let mut parent: Vec<usize> = (0..self.tables.len()).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != c {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        for j in &self.joins {
            let a = find(&mut parent, j.fk_table);
            let b = find(&mut parent, j.pk_table);
            if a == b {
                return Err(StorageError::NonTreeJoin(format!(
                    "join edge {} -> {} creates a cycle",
                    j.fk_table, j.pk_table
                )));
            }
            parent[a] = b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn two_table_dataset() -> Dataset {
        let main = Table::with_columns(
            "main",
            vec![
                Column::primary_key("id", vec![1, 2, 3]),
                Column::data("x", vec![7, 8, 9]),
            ],
        )
        .unwrap();
        let fact = Table::with_columns(
            "fact",
            vec![
                Column::foreign_key("main_id", vec![1, 1, 2, 3]),
                Column::data("y", vec![4, 5, 6, 7]),
            ],
        )
        .unwrap();
        Dataset::new(
            "ds",
            vec![main, fact],
            vec![JoinEdge {
                fk_table: 1,
                fk_col: 0,
                pk_table: 0,
                pk_col: 0,
            }],
        )
        .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let ds = two_table_dataset();
        assert_eq!(ds.num_tables(), 2);
        assert_eq!(ds.total_rows(), 7);
        assert!(ds.join_between(0, 1).is_some());
        assert!(ds.join_between(1, 0).is_some());
        assert_eq!(ds.joins_of(0).len(), 1);
    }

    #[test]
    fn cycle_rejected() {
        let mut ds = two_table_dataset();
        // Add a second edge between the same pair: undirected cycle.
        ds.joins.push(JoinEdge {
            fk_table: 1,
            fk_col: 0,
            pk_table: 0,
            pk_col: 0,
        });
        assert!(matches!(ds.validate(), Err(StorageError::NonTreeJoin(_))));
    }

    #[test]
    fn bad_join_index_rejected() {
        let mut ds = two_table_dataset();
        ds.joins[0].pk_table = 9;
        assert!(matches!(
            ds.validate(),
            Err(StorageError::IndexOutOfRange { .. })
        ));
    }
}
