//! Tables: ordered collections of equal-length columns.

use crate::column::{Column, ColumnRole, Value};
use crate::error::StorageError;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A named table of equal-length columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table name (unique within its dataset).
    pub name: String,
    /// Columns in schema order.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Creates a table from columns, checking that all lengths agree.
    pub fn with_columns(
        name: impl Into<String>,
        columns: Vec<Column>,
    ) -> Result<Self, StorageError> {
        let mut t = Table::new(name);
        for c in columns {
            t.push_column(c)?;
        }
        Ok(t)
    }

    /// Appends a column, checking row-count consistency.
    pub fn push_column(&mut self, column: Column) -> Result<(), StorageError> {
        if let Some(first) = self.columns.first() {
            if first.len() != column.len() {
                return Err(StorageError::ColumnLengthMismatch {
                    table: self.name.clone(),
                    expected: first.len(),
                    got: column.len(),
                });
            }
        }
        self.columns.push(column);
        Ok(())
    }

    /// Number of rows (0 for a table with no columns).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column access by index.
    pub fn column(&self, idx: usize) -> Result<&Column, StorageError> {
        self.columns.get(idx).ok_or(StorageError::IndexOutOfRange {
            what: "column",
            index: idx,
        })
    }

    /// Finds a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Indices of the non-key (plain data) columns.
    pub fn data_column_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_key())
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the primary-key column, if the table has one.
    pub fn primary_key_index(&self) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.role == ColumnRole::PrimaryKey)
    }

    /// Reads one full row (allocates; intended for tests and samplers).
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.data[idx]).collect()
    }

    /// Validates internal consistency: equal column lengths and primary-key
    /// uniqueness.
    pub fn validate(&self) -> Result<(), StorageError> {
        let n = self.num_rows();
        for c in &self.columns {
            if c.len() != n {
                return Err(StorageError::ColumnLengthMismatch {
                    table: self.name.clone(),
                    expected: n,
                    got: c.len(),
                });
            }
        }
        if let Some(pk) = self.primary_key_index() {
            let col = &self.columns[pk];
            let mut seen = HashSet::with_capacity(col.len());
            for &v in &col.data {
                if !seen.insert(v) {
                    return Err(StorageError::NonTreeJoin(format!(
                        "duplicate primary key value {v} in table `{}`",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatched_column_rejected() {
        let mut t = Table::new("t");
        t.push_column(Column::data("a", vec![1, 2, 3])).unwrap();
        let err = t.push_column(Column::data("b", vec![1])).unwrap_err();
        assert!(matches!(err, StorageError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn pk_uniqueness_checked() {
        let t = Table::with_columns("t", vec![Column::primary_key("id", vec![1, 2, 2])]).unwrap();
        assert!(t.validate().is_err());
    }

    #[test]
    fn lookup_helpers() {
        let t = Table::with_columns(
            "t",
            vec![
                Column::primary_key("id", vec![1, 2]),
                Column::data("x", vec![10, 20]),
                Column::foreign_key("fk", vec![1, 1]),
            ],
        )
        .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.primary_key_index(), Some(0));
        assert_eq!(t.data_column_indices(), vec![1]);
        assert_eq!(t.column_index("x"), Some(1));
        assert_eq!(t.row(1), vec![2, 20, 1]);
    }
}
