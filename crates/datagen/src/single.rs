//! Single-table generation (paper §IV-A1).
//!
//! A table is generated in two steps: (1) each column is drawn from the
//! Eq. 1 distribution with its own skew, and (2) every pair of adjacent
//! columns is correlated to a random strength within the requested range.

use crate::correlate::correlate_columns;
use crate::pareto::ParetoColumn;
use crate::spec::SpecRange;
use ce_storage::{Column, Table};
use rand::Rng;

/// Generates a table of `num_columns` data columns and `num_rows` rows.
///
/// Per column: domain size drawn from `domain`, skew from `skew`. Adjacent
/// column pairs are then correlated with strengths drawn from `correlation`,
/// exactly as the paper's single-table procedure describes ("for every two
/// adjacent columns, we correct their correlation r").
#[allow(clippy::too_many_arguments)]
pub fn generate_table<R: Rng>(
    name: impl Into<String>,
    num_columns: usize,
    num_rows: usize,
    domain: SpecRange<usize>,
    skew: SpecRange<f64>,
    correlation: SpecRange<f64>,
    rng: &mut R,
) -> Table {
    let mut columns: Vec<Column> = Vec::with_capacity(num_columns);
    for c in 0..num_columns {
        let d = domain.sample(rng).max(1);
        let s = skew.sample(rng);
        let sampler = ParetoColumn::new(s, 1, d as i64);
        let data = sampler.sample_column(num_rows, rng);
        columns.push(Column::data(format!("col{c}"), data));
    }
    for c in 1..num_columns {
        let r = correlation.sample(rng);
        // Half of the correlation mass comes from the immediate neighbor;
        // for c >= 2 the other half comes from the column two back, creating
        // v-structures that tree-shaped density models (Chow-Liu, SPN column
        // splits) cannot represent exactly — part of the "diverse and
        // complicated data characteristics" the paper motivates with.
        let (left, right) = columns.split_at_mut(c);
        if c >= 2 {
            let grand = left[c - 2].data.clone();
            correlate_columns(&grand, &mut right[0].data, r * 0.5, rng);
        }
        let source = &left[c - 1].data;
        correlate_columns(source, &mut right[0].data, r * 0.7, rng);
    }
    Table::with_columns(name, columns).expect("generated columns share num_rows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_storage::stats::{equality_rate, ColumnStats};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_matches_request() {
        let mut rng = StdRng::seed_from_u64(21);
        let t = generate_table(
            "t",
            4,
            500,
            SpecRange { lo: 50, hi: 100 },
            SpecRange { lo: 0.0, hi: 1.0 },
            SpecRange { lo: 0.0, hi: 0.5 },
            &mut rng,
        );
        assert_eq!(t.num_columns(), 4);
        assert_eq!(t.num_rows(), 500);
        assert!(t.columns.iter().all(|c| !c.is_key()));
        for c in &t.columns {
            let s = ColumnStats::compute(c);
            assert!(s.min >= 1 && s.max <= 100);
        }
    }

    #[test]
    fn forced_full_correlation_makes_adjacent_columns_similar() {
        let mut rng = StdRng::seed_from_u64(22);
        let t = generate_table(
            "t",
            3,
            2_000,
            SpecRange { lo: 100, hi: 100 },
            SpecRange { lo: 0.0, hi: 0.0 },
            SpecRange { lo: 1.0, hi: 1.0 },
            &mut rng,
        );
        // r = 1 puts 0.7 of the mass on the immediate neighbor (the rest
        // feeds the v-structure), so adjacent equality is ~0.7 or more.
        assert!(equality_rate(&t.columns[0], &t.columns[1]) > 0.65);
        assert!(equality_rate(&t.columns[1], &t.columns[2]) > 0.65);
        // The v-structure shows up as grandparent correlation.
        assert!(equality_rate(&t.columns[0], &t.columns[2]) > 0.4);
    }

    #[test]
    fn zero_correlation_keeps_columns_independent() {
        let mut rng = StdRng::seed_from_u64(23);
        let t = generate_table(
            "t",
            2,
            5_000,
            SpecRange {
                lo: 1_000,
                hi: 1_000,
            },
            SpecRange { lo: 0.0, hi: 0.0 },
            SpecRange { lo: 0.0, hi: 0.0 },
            &mut rng,
        );
        // Chance equality over a 1000-value uniform domain ≈ 0.1%.
        let rate = equality_rate(&t.columns[0], &t.columns[1]);
        assert!(rate < 0.01, "rate = {rate}");
    }

    #[test]
    fn deterministic_under_seed() {
        let spec_cols = 3;
        let make = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            generate_table(
                "t",
                spec_cols,
                200,
                SpecRange { lo: 10, hi: 50 },
                SpecRange { lo: 0.0, hi: 1.0 },
                SpecRange { lo: 0.0, hi: 1.0 },
                &mut rng,
            )
        };
        let a = make(99);
        let b = make(99);
        for c in 0..spec_cols {
            assert_eq!(a.columns[c].data, b.columns[c].data);
        }
    }
}
