//! Schema-faithful simulators for the paper's real-world datasets.
//!
//! We cannot redistribute IMDB / STATS / Power, and the advisor only ever
//! consumes *extracted features*, so these generators reproduce the schema
//! shape of Table I (table counts, relative row counts, column counts) and
//! the qualitative data profiles that drive Fig. 1:
//!
//! * **IMDB-like** — a 6-table star around `title` with skewed, weakly
//!   correlated attributes: the regime where query-driven models (MSCN) win.
//! * **STATS-like** — an 8-table snowflake (users → posts → …) with heavier
//!   correlations.
//! * **Power-like** — one wide table of smooth, strongly cross-correlated
//!   readings: the regime where data-driven models (NeuroCard) win.
//!
//! [`split_samples`] implements the paper's split procedure verbatim:
//! "(1) randomly select 1-5 joined tables from the dataset with the join
//! keys; (2) randomly select 1-2 non-key columns for each chosen table",
//! yielding the IMDB-20 / STATS-20 testing samples.

use crate::single::generate_table;
use crate::spec::SpecRange;
use ce_storage::{Column, ColumnRole, Dataset, JoinEdge, Table, Value};
use rand::seq::SliceRandom;
use rand::Rng;

/// Row-scale knob: `scale = 1.0` reproduces Table I row counts; smaller
/// values shrink proportionally (min 60 rows/table) for fast CI runs.
fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(60)
}

struct TableProfile {
    name: &'static str,
    base_rows: usize,
    data_cols: usize,
    domain: SpecRange<usize>,
    skew: SpecRange<f64>,
    corr: SpecRange<f64>,
    /// Index of the referenced parent table, if any.
    parent: Option<usize>,
    /// Join correlation used when wiring the FK.
    join_corr: f64,
    /// Correlation between the FK and the table's first data column —
    /// "popular movies have more cast entries". This is what breaks the
    /// per-table independence assumption of the data-driven models on
    /// multi-table schemas (the Fig. 1 effect).
    fk_data_corr: f64,
    /// Whether the table needs a PK (it is referenced by someone).
    is_main: bool,
}

fn build_from_profiles<R: Rng>(
    name: &str,
    profiles: &[TableProfile],
    scale: f64,
    rng: &mut R,
) -> Dataset {
    let mut tables: Vec<Table> = profiles
        .iter()
        .map(|p| {
            let mut t = generate_table(
                p.name,
                p.data_cols,
                scaled(p.base_rows, scale),
                p.domain,
                p.skew,
                p.corr,
                rng,
            );
            if p.is_main {
                let rows = t.num_rows();
                let mut pk: Vec<Value> = (1..=rows as Value).collect();
                pk.shuffle(rng);
                t.push_column(Column::primary_key("id", pk))
                    .expect("pk fits");
            }
            t
        })
        .collect();

    let mut joins = Vec::new();
    for (i, p) in profiles.iter().enumerate() {
        let Some(parent) = p.parent else { continue };
        let pk_col = tables[parent].primary_key_index().expect("parent has pk");
        let mut portion: Vec<Value> = tables[parent].columns[pk_col].data.clone();
        portion.shuffle(rng);
        let keep = ((portion.len() as f64 * p.join_corr) as usize).clamp(1, portion.len());
        portion.truncate(keep);
        // Skewed fanout correlated with the parent's first attribute:
        // order the referenced keys by the parent's first data column and
        // draw them with a Pareto law, so "popular" parents (by attribute)
        // accumulate most child rows. The join distribution then differs
        // from the base-table distribution — the second ingredient of the
        // Fig. 1 effect (per-table models mispredict join queries).
        if let Some(pd) = tables[parent].data_column_indices().first().copied() {
            let attr_of: std::collections::HashMap<Value, Value> = tables[parent].columns[pk_col]
                .data
                .iter()
                .copied()
                .zip(tables[parent].columns[pd].data.iter().copied())
                .collect();
            portion.sort_by_key(|k| attr_of.get(k).copied().unwrap_or(0));
        }
        let rows = tables[i].num_rows();
        let fanout_sampler = crate::pareto::ParetoColumn::new(0.75, 0, portion.len() as Value - 1);
        let fk: Vec<Value> = (0..rows)
            .map(|_| portion[fanout_sampler.sample(rng) as usize])
            .collect();
        // Correlate the child's first data column with the *parent's* first
        // data column through the join: with probability `fk_data_corr`, a
        // child row copies the attribute of the parent row it references.
        // This cross-table correlation ("popular movies attract a certain
        // kind of cast entry") is exactly what the per-table independence
        // assumption of the data-driven models cannot see — the Fig. 1
        // effect.
        if p.fk_data_corr > 0.0 && !tables[i].columns.is_empty() {
            if let Some(pd) = tables[parent].data_column_indices().first().copied() {
                let by_pk: std::collections::HashMap<Value, Value> = tables[parent].columns[pk_col]
                    .data
                    .iter()
                    .copied()
                    .zip(tables[parent].columns[pd].data.iter().copied())
                    .collect();
                let parent_vals: Vec<Value> = fk
                    .iter()
                    .map(|k| *by_pk.get(k).expect("fk hits pk"))
                    .collect();
                let target = &mut tables[i].columns[0].data;
                crate::correlate::correlate_columns(&parent_vals, target, p.fk_data_corr, rng);
            }
        }
        tables[i]
            .push_column(Column::foreign_key(
                format!("{}_id", profiles[parent].name),
                fk,
            ))
            .expect("fk fits");
        joins.push(JoinEdge {
            fk_table: i,
            fk_col: tables[i].num_columns() - 1,
            pk_table: parent,
            pk_col,
        });
    }
    Dataset::new(name, tables, joins).expect("profile graph is a tree")
}

/// IMDB-like star schema: `title` is the hub; five satellite tables
/// reference it (Table I: 6 tables, 12 columns, rows 2.1K-339K).
pub fn imdb_like<R: Rng>(scale: f64, rng: &mut R) -> Dataset {
    let d_small = SpecRange { lo: 30, hi: 400 };
    let d_big = SpecRange { lo: 500, hi: 4_000 };
    let skewed = SpecRange { lo: 0.5, hi: 0.95 };
    let mild = SpecRange { lo: 0.1, hi: 0.5 };
    let weak_corr = SpecRange { lo: 0.0, hi: 0.25 };
    let profiles = [
        TableProfile {
            name: "title",
            base_rows: 25_000,
            data_cols: 3,
            domain: d_big,
            skew: mild,
            corr: weak_corr,
            parent: None,
            join_corr: 1.0,
            fk_data_corr: 0.0,
            is_main: true,
        },
        TableProfile {
            name: "cast_info",
            base_rows: 339_000 / 4,
            data_cols: 2,
            domain: d_small,
            skew: skewed,
            corr: weak_corr,
            parent: Some(0),
            join_corr: 0.9,
            fk_data_corr: 0.8,
            is_main: false,
        },
        TableProfile {
            name: "movie_info",
            base_rows: 140_000 / 4,
            data_cols: 2,
            domain: d_small,
            skew: skewed,
            corr: weak_corr,
            parent: Some(0),
            join_corr: 0.8,
            fk_data_corr: 0.8,
            is_main: false,
        },
        TableProfile {
            name: "movie_companies",
            base_rows: 26_000 / 4,
            data_cols: 2,
            domain: d_small,
            skew: skewed,
            corr: weak_corr,
            parent: Some(0),
            join_corr: 0.6,
            fk_data_corr: 0.8,
            is_main: false,
        },
        TableProfile {
            name: "movie_keyword",
            base_rows: 45_000 / 4,
            data_cols: 1,
            domain: d_big,
            skew: skewed,
            corr: weak_corr,
            parent: Some(0),
            join_corr: 0.7,
            fk_data_corr: 0.8,
            is_main: false,
        },
        TableProfile {
            name: "movie_info_idx",
            base_rows: 2_100,
            data_cols: 2,
            domain: d_small,
            skew: mild,
            corr: weak_corr,
            parent: Some(0),
            join_corr: 0.4,
            fk_data_corr: 0.8,
            is_main: false,
        },
    ];
    build_from_profiles("imdb-light", &profiles, scale, rng)
}

/// STATS-like snowflake schema (Table I: 8 tables, 23 columns, 1K-328K rows).
pub fn stats_like<R: Rng>(scale: f64, rng: &mut R) -> Dataset {
    let d = SpecRange { lo: 50, hi: 2_000 };
    let d_small = SpecRange { lo: 10, hi: 200 };
    let skew = SpecRange { lo: 0.3, hi: 0.9 };
    let corr = SpecRange { lo: 0.2, hi: 0.6 };
    let profiles = [
        TableProfile {
            name: "users",
            base_rows: 40_000 / 4,
            data_cols: 4,
            domain: d,
            skew,
            corr,
            parent: None,
            join_corr: 1.0,
            fk_data_corr: 0.0,
            is_main: true,
        },
        TableProfile {
            name: "posts",
            base_rows: 90_000 / 4,
            data_cols: 5,
            domain: d,
            skew,
            corr,
            parent: Some(0),
            join_corr: 0.85,
            fk_data_corr: 0.55,
            is_main: true,
        },
        TableProfile {
            name: "comments",
            base_rows: 170_000 / 4,
            data_cols: 3,
            domain: d_small,
            skew,
            corr,
            parent: Some(1),
            join_corr: 0.7,
            fk_data_corr: 0.55,
            is_main: false,
        },
        TableProfile {
            name: "votes",
            base_rows: 328_000 / 4,
            data_cols: 2,
            domain: d_small,
            skew,
            corr,
            parent: Some(1),
            join_corr: 0.8,
            fk_data_corr: 0.55,
            is_main: false,
        },
        TableProfile {
            name: "badges",
            base_rows: 80_000 / 4,
            data_cols: 2,
            domain: d_small,
            skew,
            corr,
            parent: Some(0),
            join_corr: 0.6,
            fk_data_corr: 0.55,
            is_main: false,
        },
        TableProfile {
            name: "post_history",
            base_rows: 300_000 / 4,
            data_cols: 3,
            domain: d_small,
            skew,
            corr,
            parent: Some(1),
            join_corr: 0.75,
            fk_data_corr: 0.55,
            is_main: false,
        },
        TableProfile {
            name: "post_links",
            base_rows: 11_000 / 4,
            data_cols: 2,
            domain: d_small,
            skew,
            corr,
            parent: Some(1),
            join_corr: 0.3,
            fk_data_corr: 0.55,
            is_main: false,
        },
        TableProfile {
            name: "tags",
            base_rows: 1_000,
            data_cols: 2,
            domain: d_small,
            skew,
            corr,
            parent: Some(1),
            join_corr: 0.2,
            fk_data_corr: 0.55,
            is_main: false,
        },
    ];
    build_from_profiles("stats-light", &profiles, scale, rng)
}

/// Power-like single wide table: smooth, strongly correlated columns
/// (household power readings). The regime of Fig. 1(b) where data-driven
/// models dominate.
pub fn power_like<R: Rng>(scale: f64, rng: &mut R) -> Dataset {
    let t = generate_table(
        "household_power",
        7,
        scaled(50_000, scale),
        SpecRange { lo: 500, hi: 2_000 },
        SpecRange { lo: 0.0, hi: 0.2 },
        SpecRange { lo: 0.6, hi: 0.95 },
        rng,
    );
    Dataset::new("power", vec![t], Vec::new()).expect("single table valid")
}

/// The paper's split procedure: draws `count` testing sub-datasets, each
/// with 1-5 joined tables (join keys kept) and 1-2 non-key columns per
/// table. Applied to IMDB-light / STATS-light it produces the paper's
/// IMDB-20 / STATS-20 testing sets.
pub fn split_samples<R: Rng>(ds: &Dataset, count: usize, rng: &mut R) -> Vec<Dataset> {
    (0..count).map(|i| split_one(ds, i, rng)).collect()
}

fn split_one<R: Rng>(ds: &Dataset, index: usize, rng: &mut R) -> Dataset {
    // Grow a random connected subtree of the join graph.
    let want = rng.gen_range(1..=5usize.min(ds.num_tables()));
    let start = rng.gen_range(0..ds.num_tables());
    let mut chosen = vec![start];
    let mut frontier: Vec<(usize, usize)> = Vec::new(); // (new table, via chosen table)
    let mut edges: Vec<JoinEdge> = Vec::new();
    while chosen.len() < want {
        frontier.clear();
        for &t in &chosen {
            for e in ds.joins_of(t) {
                let other = if e.fk_table == t {
                    e.pk_table
                } else {
                    e.fk_table
                };
                if !chosen.contains(&other) {
                    frontier.push((other, t));
                }
            }
        }
        let Some(&(next, via)) = frontier.as_slice().choose(rng) else {
            break; // isolated component smaller than `want`
        };
        let edge = *ds.join_between(next, via).expect("frontier edge exists");
        edges.push(edge);
        chosen.push(next);
    }

    // Columns to keep per chosen table: keys referenced by kept edges plus
    // 1-2 random non-key columns.
    let mut new_tables = Vec::new();
    let mut table_remap = vec![usize::MAX; ds.num_tables()];
    for (new_idx, &t) in chosen.iter().enumerate() {
        table_remap[t] = new_idx;
        let table = &ds.tables[t];
        let mut keep: Vec<usize> = Vec::new();
        for e in &edges {
            if e.fk_table == t {
                keep.push(e.fk_col);
            }
            if e.pk_table == t {
                keep.push(e.pk_col);
            }
        }
        let mut data_cols = table.data_column_indices();
        data_cols.shuffle(rng);
        let n_data = rng.gen_range(1..=2usize).min(data_cols.len().max(1));
        for &c in data_cols.iter().take(n_data) {
            keep.push(c);
        }
        keep.sort_unstable();
        keep.dedup();
        let columns: Vec<Column> = keep
            .iter()
            .map(|&c| {
                let src = &table.columns[c];
                Column {
                    name: src.name.clone(),
                    data: src.data.clone(),
                    role: src.role,
                }
            })
            .collect();
        // Column remap for edges.
        let mut t2 = Table::new(format!("{}#{}", table.name, index));
        for col in columns {
            t2.push_column(col).expect("copied columns consistent");
        }
        new_tables.push((t, keep, t2));
    }

    let remap_col = |t: usize, c: usize| -> usize {
        let (_, keep, _) = new_tables
            .iter()
            .find(|(orig, _, _)| *orig == t)
            .expect("table kept");
        keep.iter().position(|&k| k == c).expect("column kept")
    };
    let new_joins: Vec<JoinEdge> = edges
        .iter()
        .map(|e| JoinEdge {
            fk_table: table_remap[e.fk_table],
            fk_col: remap_col(e.fk_table, e.fk_col),
            pk_table: table_remap[e.pk_table],
            pk_col: remap_col(e.pk_table, e.pk_col),
        })
        .collect();

    let tables: Vec<Table> = new_tables.into_iter().map(|(_, _, t)| t).collect();
    // Drop PK role on tables whose PK column wasn't kept by any edge — they
    // may still carry the role flag; validation only checks uniqueness.
    Dataset::new(format!("{}-split{}", ds.name, index), tables, new_joins)
        .expect("split preserves tree structure")
}

/// Convenience: checks whether any column kept a key role (used in tests).
pub fn has_key_columns(ds: &Dataset) -> bool {
    ds.tables
        .iter()
        .any(|t| t.columns.iter().any(|c| c.role != ColumnRole::Data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn imdb_shape() {
        let mut rng = StdRng::seed_from_u64(41);
        let ds = imdb_like(0.01, &mut rng);
        ds.validate().unwrap();
        assert_eq!(ds.num_tables(), 6);
        assert_eq!(ds.joins.len(), 5);
        // Star: every join points at table 0.
        assert!(ds.joins.iter().all(|j| j.pk_table == 0));
        let total_data_cols: usize = ds
            .tables
            .iter()
            .map(|t| t.data_column_indices().len())
            .sum();
        assert_eq!(total_data_cols, 12); // Table I: 12 columns
    }

    #[test]
    fn stats_shape() {
        let mut rng = StdRng::seed_from_u64(42);
        let ds = stats_like(0.01, &mut rng);
        ds.validate().unwrap();
        assert_eq!(ds.num_tables(), 8);
        assert_eq!(ds.joins.len(), 7);
        // users and posts are both referenced.
        assert!(ds.joins.iter().any(|j| j.pk_table == 0));
        assert!(ds.joins.iter().any(|j| j.pk_table == 1));
    }

    #[test]
    fn power_is_single_wide_table() {
        let mut rng = StdRng::seed_from_u64(43);
        let ds = power_like(0.01, &mut rng);
        assert_eq!(ds.num_tables(), 1);
        assert_eq!(ds.tables[0].num_columns(), 7);
        assert!(ds.joins.is_empty());
    }

    #[test]
    fn split_samples_are_valid_and_small() {
        let mut rng = StdRng::seed_from_u64(44);
        let base = imdb_like(0.01, &mut rng);
        let splits = split_samples(&base, 20, &mut rng);
        assert_eq!(splits.len(), 20);
        for s in &splits {
            s.validate().unwrap();
            assert!(s.num_tables() >= 1 && s.num_tables() <= 5);
            for t in &s.tables {
                let data = t.data_column_indices().len();
                assert!((1..=2).contains(&data), "{} data cols", data);
            }
            // Tree structure maintained after remapping.
            assert_eq!(s.joins.len(), s.num_tables() - 1);
        }
    }

    #[test]
    fn split_preserves_join_keys() {
        let mut rng = StdRng::seed_from_u64(45);
        let base = stats_like(0.01, &mut rng);
        let splits = split_samples(&base, 10, &mut rng);
        for s in splits.iter().filter(|s| s.num_tables() > 1) {
            for e in &s.joins {
                // Each join edge references real key columns in the split.
                let pk_role = s.tables[e.pk_table].columns[e.pk_col].role;
                assert_eq!(pk_role, ColumnRole::PrimaryKey);
                let fk_role = s.tables[e.fk_table].columns[e.fk_col].role;
                assert_eq!(fk_role, ColumnRole::ForeignKey);
            }
        }
    }
}
