//! F2 — column-to-column correlation.
//!
//! The paper correlates two columns by making them hold the *same value at
//! the same position* with probability `r` (§IV-A F2): "take two values
//! (v1, v2) at the same position in the two columns, and make them equal
//! with the probability of r".

use ce_storage::Value;
use rand::Rng;

/// Correlates `target` against `source` in place: each position is
/// overwritten with the source value with probability `r ∈ [0, 1]`.
pub fn correlate_columns<R: Rng>(source: &[Value], target: &mut [Value], r: f64, rng: &mut R) {
    let r = r.clamp(0.0, 1.0);
    let n = source.len().min(target.len());
    for i in 0..n {
        if rng.gen::<f64>() < r {
            target[i] = source[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_storage::stats::equality_rate;
    use ce_storage::Column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correlation_matches_requested_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let source: Vec<Value> = (0..20_000).map(|_| rng.gen_range(1..=1000)).collect();
        let mut target: Vec<Value> = (0..20_000).map(|_| rng.gen_range(2000..=3000)).collect();
        correlate_columns(&source, &mut target, 0.7, &mut rng);
        let rate = equality_rate(&Column::data("s", source), &Column::data("t", target));
        assert!((rate - 0.7).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn zero_correlation_leaves_target_untouched() {
        let mut rng = StdRng::seed_from_u64(12);
        let source = vec![1; 100];
        let mut target: Vec<Value> = (101..201).collect();
        let before = target.clone();
        correlate_columns(&source, &mut target, 0.0, &mut rng);
        assert_eq!(target, before);
    }

    #[test]
    fn full_correlation_copies_source() {
        let mut rng = StdRng::seed_from_u64(13);
        let source: Vec<Value> = (1..=50).collect();
        let mut target = vec![0; 50];
        correlate_columns(&source, &mut target, 1.0, &mut rng);
        assert_eq!(target, source);
    }
}
