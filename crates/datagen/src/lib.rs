//! # ce-datagen — synthetic dataset generation (paper §IV-A)
//!
//! AutoCE trains on *generated* datasets covering a wide space of data
//! features. This crate implements the paper's generator exactly:
//!
//! * **F1 skewness** ([`pareto`]): every column is drawn from the bounded
//!   Pareto-style distribution of Eq. 1, with `skew = 0` collapsing to
//!   uniform.
//! * **F2 column correlation** ([`correlate`]): a pair of columns is
//!   correlated by forcing equality at the same row position with
//!   probability `r`.
//! * **F3 join correlation** ([`multi`]): a PK-FK edge with correlation `p`
//!   populates the FK column from a fraction `p` of the PK values.
//!
//! [`single`] and [`multi`] compose these into single-/multi-table datasets
//! driven by a [`DatasetSpec`]; [`realworld`] provides the schema-faithful
//! IMDB-like / STATS-like / Power-like simulators and the "-20" split
//! sampler that substitute for the paper's real datasets (see DESIGN.md —
//! Substitutions).

pub mod correlate;
pub mod multi;
pub mod pareto;
pub mod realworld;
pub mod single;
pub mod spec;

pub use multi::{generate_batch, generate_dataset};
pub use pareto::ParetoColumn;
pub use single::generate_table;
pub use spec::{DatasetSpec, SpecRange};
