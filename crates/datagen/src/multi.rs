//! Multi-table generation (paper §IV-A2).
//!
//! Three steps, mirroring the paper: (1) generate each table independently
//! with [`generate_table`]; (2) select main
//! tables and assign each a primary key; (3) correlate tables with the main
//! tables through PK-FK joins whose join correlation `p` is drawn from
//! `[jmin, jmax]` (F3): a fraction `p` of the PK values is taken without
//! replacement and the FK column is sampled from that portion.
//!
//! The construction always yields a *connected acyclic* join graph: the
//! first generated table is a main table, and every further table references
//! one of the already-placed main tables.

use crate::single::generate_table;
use crate::spec::DatasetSpec;
use ce_storage::{Column, Dataset, JoinEdge, Table, Value};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates one dataset according to `spec`, deterministically from `rng`.
pub fn generate_dataset<R: Rng>(
    name: impl Into<String>,
    spec: &DatasetSpec,
    rng: &mut R,
) -> Dataset {
    let num_tables = spec.tables.sample(rng).max(1);
    let name = name.into();

    if num_tables == 1 {
        let rows = spec.rows.sample(rng);
        let cols = spec.columns.sample(rng).max(1);
        let t = generate_table(
            "table0",
            cols,
            rows,
            spec.domain,
            spec.skew,
            spec.correlation,
            rng,
        );
        return Dataset::new(name, vec![t], Vec::new()).expect("single table is valid");
    }

    // Step 1: independent tables of data columns.
    let mut tables: Vec<Table> = (0..num_tables)
        .map(|i| {
            let rows = spec.rows.sample(rng);
            let cols = spec.columns.sample(rng).max(1);
            generate_table(
                format!("table{i}"),
                cols,
                rows,
                spec.domain,
                spec.skew,
                spec.correlation,
                rng,
            )
        })
        .collect();

    // Step 2: choose main tables (at least one, table 0 always included so
    // the join tree has a root) and give each a shuffled primary key.
    let num_main = rng.gen_range(1..=num_tables.max(2) - 1).max(1);
    let mut main_flags = vec![false; num_tables];
    main_flags[0] = true;
    let mut others: Vec<usize> = (1..num_tables).collect();
    others.shuffle(rng);
    for &t in others.iter().take(num_main.saturating_sub(1)) {
        main_flags[t] = true;
    }
    for (t, flag) in main_flags.iter().enumerate() {
        if *flag {
            let rows = tables[t].num_rows();
            let mut pk: Vec<Value> = (1..=rows as Value).collect();
            pk.shuffle(rng);
            tables[t]
                .push_column(Column::primary_key("pk", pk))
                .expect("pk length matches");
        }
    }

    // Step 3: connect every non-root table to an earlier main table.
    let mut joins = Vec::new();
    for t in 1..num_tables {
        let candidates: Vec<usize> = (0..t).filter(|&m| main_flags[m]).collect();
        let Some(&target) = candidates.as_slice().choose(rng) else {
            continue; // no earlier main table (cannot happen: table 0 is main)
        };
        let p = spec.join_correlation.sample(rng).clamp(0.01, 1.0);
        let pk_col = tables[target]
            .primary_key_index()
            .expect("main tables have a pk");
        let pk_values: Vec<Value> = tables[target].columns[pk_col].data.clone();
        let portion_len = ((pk_values.len() as f64 * p).round() as usize).clamp(1, pk_values.len());
        let mut portion = pk_values;
        portion.shuffle(rng);
        portion.truncate(portion_len);
        // Fanout skew: order the referenced keys by the parent's first
        // attribute and draw them with a Pareto law so child rows
        // concentrate on "popular" parents.
        let parent_attr = tables[target].data_column_indices().first().copied();
        if let Some(pd) = parent_attr {
            let attr_of: std::collections::HashMap<Value, Value> = tables[target].columns[pk_col]
                .data
                .iter()
                .copied()
                .zip(tables[target].columns[pd].data.iter().copied())
                .collect();
            portion.sort_by_key(|k| attr_of.get(k).copied().unwrap_or(0));
        }
        let fanout_skew = spec.fanout_skew.sample(rng);
        let sampler = crate::pareto::ParetoColumn::new(fanout_skew, 0, portion.len() as Value - 1);
        let rows = tables[t].num_rows();
        let fk_data: Vec<Value> = (0..rows)
            .map(|_| portion[sampler.sample(rng) as usize])
            .collect();
        // Cross-table correlation: the child's first data column copies the
        // referenced parent row's first data column with sampled probability.
        let cross = spec.cross_correlation.sample(rng);
        if cross > 0.0 {
            if let Some(pd) = parent_attr {
                let attr_of: std::collections::HashMap<Value, Value> = tables[target].columns
                    [pk_col]
                    .data
                    .iter()
                    .copied()
                    .zip(tables[target].columns[pd].data.iter().copied())
                    .collect();
                let parent_vals: Vec<Value> = fk_data
                    .iter()
                    .map(|k| attr_of.get(k).copied().unwrap_or(0))
                    .collect();
                // Every child data column inherits the joined parent's
                // attribute with decaying probability.
                let child_cols = tables[t].data_column_indices();
                for (rank, c) in child_cols.into_iter().enumerate() {
                    let strength = cross / (1.0 + rank as f64);
                    let child_col = &mut tables[t].columns[c].data;
                    crate::correlate::correlate_columns(&parent_vals, child_col, strength, rng);
                }
            }
        }
        tables[t]
            .push_column(Column::foreign_key(format!("fk_table{target}"), fk_data))
            .expect("fk length matches");
        let fk_col = tables[t].num_columns() - 1;
        joins.push(JoinEdge {
            fk_table: t,
            fk_col,
            pk_table: target,
            pk_col,
        });
    }

    Dataset::new(name, tables, joins).expect("constructed join graph is a tree")
}

/// Generates a batch of datasets with consecutive seeds derived from `rng`.
pub fn generate_batch<R: Rng>(
    prefix: &str,
    count: usize,
    spec: &DatasetSpec,
    rng: &mut R,
) -> Vec<Dataset> {
    (0..count)
        .map(|i| generate_dataset(format!("{prefix}{i}"), spec, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecRange;
    use ce_storage::stats::join_correlation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> DatasetSpec {
        DatasetSpec {
            rows: SpecRange { lo: 200, hi: 400 },
            domain: SpecRange { lo: 20, hi: 60 },
            ..DatasetSpec::paper()
        }
    }

    #[test]
    fn multi_table_dataset_is_valid_and_connected() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let ds = generate_dataset("d", &spec().multi_table(), &mut rng);
            ds.validate().unwrap();
            assert!(ds.num_tables() >= 2);
            // Tree: exactly tables-1 joins, and a full-tables query validates.
            assert_eq!(ds.joins.len(), ds.num_tables() - 1);
            let q = ce_storage::Query {
                tables: (0..ds.num_tables()).collect(),
                joins: ds.joins.iter().map(|j| (j.fk_table, j.pk_table)).collect(),
                predicates: vec![],
            };
            q.validate(&ds).unwrap();
        }
    }

    #[test]
    fn single_table_dataset_has_no_joins() {
        let mut rng = StdRng::seed_from_u64(32);
        let ds = generate_dataset("s", &spec().single_table(), &mut rng);
        assert_eq!(ds.num_tables(), 1);
        assert!(ds.joins.is_empty());
        assert!(ds.tables[0].primary_key_index().is_none());
    }

    #[test]
    fn join_correlation_tracks_requested_range() {
        let mut spec = spec().multi_table();
        spec.join_correlation = SpecRange { lo: 0.3, hi: 0.3 };
        spec.rows = SpecRange {
            lo: 2_000,
            hi: 2_000,
        };
        let mut rng = StdRng::seed_from_u64(33);
        let ds = generate_dataset("jc", &spec, &mut rng);
        for edge in &ds.joins {
            let jc = join_correlation(&ds, edge);
            // The FK samples the 30% portion; with 2000 rows essentially all
            // of the portion is hit.
            assert!((jc - 0.3).abs() < 0.05, "jc = {jc}");
        }
    }

    #[test]
    fn batch_generation_is_deterministic() {
        let mut a = StdRng::seed_from_u64(34);
        let mut b = StdRng::seed_from_u64(34);
        let da = generate_batch("x", 3, &spec(), &mut a);
        let db = generate_batch("x", 3, &spec(), &mut b);
        for (x, y) in da.iter().zip(&db) {
            assert_eq!(x.num_tables(), y.num_tables());
            assert_eq!(x.total_rows(), y.total_rows());
            for (tx, ty) in x.tables.iter().zip(&y.tables) {
                for (cx, cy) in tx.columns.iter().zip(&ty.columns) {
                    assert_eq!(cx.data, cy.data);
                }
            }
        }
    }
}
