//! Generation parameters (the paper's Stage-1 inputs: "#tables, #columns,
//! domain size, skewness, correlation…").

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An inclusive parameter range sampled uniformly per dataset/table/column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecRange<T> {
    /// Inclusive lower bound.
    pub lo: T,
    /// Inclusive upper bound.
    pub hi: T,
}

impl SpecRange<usize> {
    /// Uniform draw from the range.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

impl SpecRange<f64> {
    /// Uniform draw from the range.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// Full parameterization of one generated dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of tables (paper: 1-5).
    pub tables: SpecRange<usize>,
    /// Rows per table (paper: 10K-50K; scale down for fast runs).
    pub rows: SpecRange<usize>,
    /// Non-key columns per table (paper: 2-25 total columns per dataset).
    pub columns: SpecRange<usize>,
    /// Domain size per column.
    pub domain: SpecRange<usize>,
    /// Skewness range (F1).
    pub skew: SpecRange<f64>,
    /// Column-correlation range (F2); applied to adjacent column pairs.
    pub correlation: SpecRange<f64>,
    /// Join-correlation range (F3): `[jmin, jmax]`.
    pub join_correlation: SpecRange<f64>,
    /// Cross-table correlation: probability that a child row's first data
    /// column copies the referenced parent row's first data column. This is
    /// the joint-distribution-across-tables effect that separates query-
    /// driven from data-driven models (Example 1 of the paper).
    pub cross_correlation: SpecRange<f64>,
    /// Fanout skew: how unevenly child rows concentrate on parents, ordered
    /// by the parent's first attribute (0 = uniform fanout).
    pub fanout_skew: SpecRange<f64>,
}

impl DatasetSpec {
    /// The paper's synthetic-dataset configuration (Table I row "Synthetic"):
    /// 1-5 tables, 10K-50K rows, 2-25 columns, total domain ≈ 1.6 × 10⁴.
    pub fn paper() -> Self {
        DatasetSpec {
            tables: SpecRange { lo: 1, hi: 5 },
            rows: SpecRange {
                lo: 10_000,
                hi: 50_000,
            },
            columns: SpecRange { lo: 2, hi: 8 },
            domain: SpecRange { lo: 100, hi: 3_200 },
            skew: SpecRange { lo: 0.0, hi: 1.0 },
            correlation: SpecRange { lo: 0.0, hi: 1.0 },
            join_correlation: SpecRange { lo: 0.2, hi: 1.0 },
            cross_correlation: SpecRange { lo: 0.0, hi: 0.9 },
            fanout_skew: SpecRange { lo: 0.0, hi: 0.9 },
        }
    }

    /// A scaled-down configuration for tests and quick benchmark runs; the
    /// same feature space, two orders of magnitude fewer rows.
    pub fn small() -> Self {
        DatasetSpec {
            rows: SpecRange { lo: 600, hi: 2_000 },
            domain: SpecRange { lo: 200, hi: 3_000 },
            ..DatasetSpec::paper()
        }
    }

    /// Restricts the spec to single-table datasets.
    pub fn single_table(mut self) -> Self {
        self.tables = SpecRange { lo: 1, hi: 1 };
        self
    }

    /// Restricts the spec to multi-table datasets (2..=5 tables).
    pub fn multi_table(mut self) -> Self {
        self.tables = SpecRange { lo: 2, hi: 5 };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_sample_inclusively() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = SpecRange { lo: 3usize, hi: 5 };
        for _ in 0..100 {
            let v = r.sample(&mut rng);
            assert!((3..=5).contains(&v));
        }
        let f = SpecRange {
            lo: 0.25f64,
            hi: 0.75,
        };
        for _ in 0..100 {
            let v = f.sample(&mut rng);
            assert!((0.25..=0.75).contains(&v));
        }
    }

    #[test]
    fn degenerate_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(6);
        let r = SpecRange { lo: 7usize, hi: 7 };
        assert_eq!(r.sample(&mut rng), 7);
    }

    #[test]
    fn presets() {
        let p = DatasetSpec::paper();
        assert_eq!(p.tables.hi, 5);
        let s = DatasetSpec::small().single_table();
        assert_eq!(s.tables.lo, 1);
        assert_eq!(s.tables.hi, 1);
        let m = DatasetSpec::small().multi_table();
        assert!(m.tables.lo >= 2);
    }
}
