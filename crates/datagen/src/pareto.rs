//! F1 — skewed column generation from the paper's Eq. 1.
//!
//! The paper defines the column PDF as
//!
//! ```text
//! f(x) = (1 + x·(skew − 1))^(−1 − 1/(skew − 1)) / (vmax − vmin)
//! ```
//!
//! over the unit interval, with `skew = 0` giving the uniform distribution
//! and larger `skew` concentrating mass near `vmin`. We sample it exactly by
//! inverting the CDF: with `a = skew − 1`,
//!
//! ```text
//! F(x)   = (1 − (1 + a·x)^(−1/a)) / (1 − (1 + a)^(−1/a))
//! F⁻¹(u) = ((1 − u·(1 − (1+a)^(−1/a)))^(−a) − 1) / a
//! ```
//!
//! which degenerates gracefully to `F⁻¹(u) = u` as `skew → 0`.

use ce_storage::Value;
use rand::Rng;

/// Sampler for one skewed column over the integer domain `[vmin, vmax]`.
#[derive(Debug, Clone, Copy)]
pub struct ParetoColumn {
    /// Skewness parameter in `[0, 1]`; 0 = uniform.
    pub skew: f64,
    /// Minimum value (inclusive).
    pub vmin: Value,
    /// Maximum value (inclusive).
    pub vmax: Value,
}

impl ParetoColumn {
    /// Creates a sampler; `skew` is clamped to `[0, 0.999]` to avoid the
    /// singularity at `skew = 1` (the paper varies skew in `[0, 1]`).
    pub fn new(skew: f64, vmin: Value, vmax: Value) -> Self {
        assert!(vmax >= vmin, "vmax must be >= vmin");
        ParetoColumn {
            skew: skew.clamp(0.0, 0.999),
            vmin,
            vmax,
        }
    }

    /// Inverse CDF on the unit interval.
    #[inline]
    fn unit_inverse_cdf(&self, u: f64) -> f64 {
        let a = self.skew - 1.0; // in [-1, -0.001]
        if (a + 1.0).abs() < 1e-9 {
            // skew = 0: uniform.
            return u;
        }
        let tail = (1.0 + a).powf(-1.0 / a); // (1+a)^(-1/a) in (0, 1)
        let inner = 1.0 - u * (1.0 - tail);
        ((inner.powf(-a) - 1.0) / a).clamp(0.0, 1.0)
    }

    /// Draws one value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Value {
        let u: f64 = rng.gen();
        let x = self.unit_inverse_cdf(u);
        let span = (self.vmax - self.vmin) as f64 + 1.0;
        let v = self.vmin + (x * span) as Value;
        v.min(self.vmax)
    }

    /// Draws a whole column of `n` values.
    pub fn sample_column<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<Value> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean(v: &[Value]) -> f64 {
        v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64
    }

    #[test]
    fn skew_zero_is_uniform() {
        let p = ParetoColumn::new(0.0, 1, 100);
        let mut rng = StdRng::seed_from_u64(1);
        let col = p.sample_column(50_000, &mut rng);
        let m = mean(&col);
        assert!((m - 50.5).abs() < 1.0, "mean = {m}");
        assert!(col.iter().all(|&v| (1..=100).contains(&v)));
        // Tail decile should hold roughly 10% of the mass.
        let tail = col.iter().filter(|&&v| v > 90).count() as f64 / 50_000.0;
        assert!((tail - 0.10).abs() < 0.02, "tail = {tail}");
    }

    #[test]
    fn higher_skew_concentrates_near_min() {
        let mut rng = StdRng::seed_from_u64(2);
        let lo = ParetoColumn::new(0.2, 1, 1000).sample_column(20_000, &mut rng);
        let hi = ParetoColumn::new(0.9, 1, 1000).sample_column(20_000, &mut rng);
        assert!(
            mean(&hi) < mean(&lo),
            "more skew must pull the mean down: {} vs {}",
            mean(&hi),
            mean(&lo)
        );
        // Analytically F(0.1) = 0.1468 at skew = 0.9 (vs 0.10 for uniform).
        let head = hi.iter().filter(|&&v| v <= 100).count() as f64 / 20_000.0;
        assert!((head - 0.1468).abs() < 0.015, "head mass = {head}");
    }

    #[test]
    fn bounds_respected_at_extremes() {
        let p = ParetoColumn::new(0.999, 5, 5);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(p.sample_column(100, &mut rng).iter().all(|&v| v == 5));
    }

    #[test]
    #[should_panic(expected = "vmax must be >= vmin")]
    fn invalid_bounds_panic() {
        ParetoColumn::new(0.5, 10, 1);
    }
}
