//! # autoce-suite — umbrella crate of the AutoCE reproduction
//!
//! Re-exports the public API of every workspace crate so examples and
//! integration tests have a single import root. See `README.md` for the
//! architecture overview and `DESIGN.md` for the system inventory.

pub use autoce;
pub use ce_cluster as cluster;
pub use ce_datagen as datagen;
pub use ce_features as features;
pub use ce_gnn as gnn;
pub use ce_models as models;
pub use ce_nn as nn;
pub use ce_optsim as optsim;
pub use ce_serve as serve;
pub use ce_storage as storage;
pub use ce_testbed as testbed;
pub use ce_workload as workload;
